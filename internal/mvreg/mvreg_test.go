package mvreg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/kernel"
	"repro/internal/mathx"
)

// bivariateSample draws X uniformly on the unit square with
// Y = X₁ + 2·X₂² + noise.
func bivariateSample(n int, seed int64) Sample {
	rng := rand.New(rand.NewSource(seed))
	s := Sample{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		s.X[i] = []float64{x1, x2}
		s.Y[i] = x1 + 2*x2*x2 + 0.2*rng.NormFloat64()
	}
	return s
}

func TestValidate(t *testing.T) {
	good := bivariateSample(10, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Sample{
		{X: [][]float64{{1, 2}}, Y: []float64{1, 2}},
		{X: [][]float64{{1, 2}}, Y: []float64{1}},
		{X: [][]float64{{1, 2}, {1}}, Y: []float64{1, 2}},
		{X: [][]float64{{}, {}}, Y: []float64{1, 2}},
		{X: [][]float64{{1, math.NaN()}, {1, 2}}, Y: []float64{1, 2}},
		{X: [][]float64{{1, 2}, {3, 4}}, Y: []float64{1, math.Inf(1)}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	s := bivariateSample(20, 2)
	if _, err := New(s, []float64{0.1}, kernel.Epanechnikov); err == nil {
		t.Error("wrong bandwidth count should fail")
	}
	if _, err := New(s, []float64{0.1, 0}, kernel.Epanechnikov); err == nil {
		t.Error("zero bandwidth should fail")
	}
	m, err := New(s, []float64{0.2, 0.3}, kernel.Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	// New must copy the bandwidth slice.
	h := []float64{0.2, 0.3}
	m2, _ := New(s, h, kernel.Epanechnikov)
	h[0] = 99
	if m2.H[0] == 99 {
		t.Error("New should copy the bandwidths")
	}
	_ = m
}

func TestPredictConstantY(t *testing.T) {
	s := bivariateSample(50, 3)
	for i := range s.Y {
		s.Y[i] = 7
	}
	m, err := New(s, []float64{0.3, 0.3}, kernel.Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.Predict([]float64{0.5, 0.5})
	if !ok || math.Abs(got-7) > 1e-12 {
		t.Errorf("constant-Y prediction = %v, %v", got, ok)
	}
}

func TestPredictEmptyNeighbourhood(t *testing.T) {
	s := Sample{X: [][]float64{{0, 0}, {1, 1}}, Y: []float64{1, 2}}
	m, err := New(s, []float64{0.1, 0.1}, kernel.Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Predict([]float64{0.5, 0.5}); ok {
		t.Error("isolated point should report ok=false")
	}
}

func TestPredictRecoverySurface(t *testing.T) {
	s := bivariateSample(4000, 4)
	m, err := New(s, []float64{0.1, 0.1}, kernel.Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range [][]float64{{0.3, 0.3}, {0.5, 0.7}, {0.8, 0.2}} {
		got, ok := m.Predict(pt)
		want := pt[0] + 2*pt[1]*pt[1]
		if !ok || math.Abs(got-want) > 0.15 {
			t.Errorf("ĝ(%v) = %v, want ≈ %v", pt, got, want)
		}
	}
}

func TestCVScoreReducesToUnivariate(t *testing.T) {
	// A 1-dimensional mvreg sample must give exactly the bandwidth
	// package's CV score.
	rng := rand.New(rand.NewSource(5))
	n := 80
	x := make([]float64, n)
	y := make([]float64, n)
	s := Sample{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x[i] = rng.Float64()
		y[i] = rng.NormFloat64()
		s.X[i] = []float64{x[i]}
		s.Y[i] = y[i]
	}
	for _, h := range []float64{0.05, 0.2, 0.9} {
		a := CVScore(s, []float64{h}, kernel.Epanechnikov)
		b := bandwidth.CVScore(x, y, h, kernel.Epanechnikov)
		if !mathx.AlmostEqual(a, b, 1e-12) {
			t.Errorf("h=%v: mv %v vs uni %v", h, a, b)
		}
	}
}

func TestSweepDimensionMatchesNaive(t *testing.T) {
	// The weighted sorted sweep must reproduce the naive CV score for
	// every candidate bandwidth of the swept dimension.
	s := bivariateSample(60, 7)
	hFixed := []float64{0.3, 0.4}
	grid := []float64{0.1, 0.2, 0.3, 0.5, 0.8}
	for dim := 0; dim < 2; dim++ {
		scores := sweepDimension(s, hFixed, dim, grid)
		for q, hc := range grid {
			h := append([]float64(nil), hFixed...)
			h[dim] = hc
			want := CVScore(s, h, kernel.Epanechnikov)
			if !mathx.AlmostEqual(scores[q], want, 1e-9) {
				t.Errorf("dim %d h=%v: sweep %v vs naive %v", dim, hc, scores[q], want)
			}
		}
	}
}

func TestDefaultGrids(t *testing.T) {
	s := bivariateSample(100, 8)
	grids, err := DefaultGrids(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 2 || len(grids[0]) != 10 {
		t.Fatalf("grid geometry wrong")
	}
	for j := range grids {
		for q := 1; q < len(grids[j]); q++ {
			if grids[j][q] <= grids[j][q-1] {
				t.Fatalf("grid %d not ascending", j)
			}
		}
	}
	// Degenerate dimension.
	for i := range s.X {
		s.X[i][1] = 0.5
	}
	if _, err := DefaultGrids(s, 10); err == nil {
		t.Error("zero-domain dimension should fail")
	}
}

func TestMeshSearchExactOnSmallMesh(t *testing.T) {
	s := bivariateSample(50, 9)
	grids := [][]float64{{0.2, 0.4, 0.8}, {0.2, 0.4, 0.8}}
	res, err := MeshSearch(s, grids, kernel.Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 9 {
		t.Errorf("mesh should evaluate 9 cells, did %d", res.Evals)
	}
	// Exhaustive check.
	best := math.Inf(1)
	var bestH []float64
	for _, h1 := range grids[0] {
		for _, h2 := range grids[1] {
			cv := CVScore(s, []float64{h1, h2}, kernel.Epanechnikov)
			if cv < best {
				best = cv
				bestH = []float64{h1, h2}
			}
		}
	}
	if !mathx.AlmostEqual(res.CV, best, 1e-12) || res.H[0] != bestH[0] || res.H[1] != bestH[1] {
		t.Errorf("mesh best %v (%v) vs exhaustive %v (%v)", res.H, res.CV, bestH, best)
	}
}

func TestMeshSearchGuards(t *testing.T) {
	s := bivariateSample(20, 10)
	big := make([]float64, 2000)
	for i := range big {
		big[i] = float64(i+1) * 0.001
	}
	if _, err := MeshSearch(s, [][]float64{big, big}, kernel.Epanechnikov); err == nil {
		t.Error("oversized mesh should be refused")
	}
	if _, err := MeshSearch(s, [][]float64{{0.1}}, kernel.Epanechnikov); err == nil {
		t.Error("grid-count mismatch should fail")
	}
	if _, err := MeshSearch(s, [][]float64{{0.1}, {}}, kernel.Epanechnikov); err == nil {
		t.Error("empty grid should fail")
	}
}

func TestCoordinateDescentReachesCoordinatewiseOptimum(t *testing.T) {
	s := bivariateSample(120, 11)
	grids, err := DefaultGrids(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CoordinateDescent(s, grids, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps < 1 || res.Evals == 0 {
		t.Errorf("descent bookkeeping: %+v", res)
	}
	// No single-coordinate move on the grid improves the CV.
	base := CVScore(s, res.H, kernel.Epanechnikov)
	if !mathx.AlmostEqual(base, res.CV, 1e-9) {
		t.Errorf("reported CV %v vs recomputed %v", res.CV, base)
	}
	for dim := 0; dim < 2; dim++ {
		for _, hc := range grids[dim] {
			h := append([]float64(nil), res.H...)
			h[dim] = hc
			if cv := CVScore(s, h, kernel.Epanechnikov); cv < base-1e-9 {
				t.Errorf("coordinate move dim %d h=%v improves CV: %v < %v", dim, hc, cv, base)
			}
		}
	}
}

func TestCoordinateDescentAgreesWithMesh(t *testing.T) {
	// On a well-behaved surface the coordinate-wise optimum should match
	// the full mesh optimum (or at least its CV within a whisker).
	s := bivariateSample(80, 13)
	grids := [][]float64{{0.1, 0.2, 0.3, 0.5, 0.8}, {0.1, 0.2, 0.3, 0.5, 0.8}}
	mesh, err := MeshSearch(s, grids, kernel.Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := CoordinateDescent(s, grids, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cd.CV > mesh.CV*1.05 {
		t.Errorf("descent CV %v far above mesh CV %v", cd.CV, mesh.CV)
	}
	if cd.Evals >= mesh.Evals*len(s.X) {
		t.Error("descent should evaluate far fewer full objectives than the mesh")
	}
}

func TestCoordinateDescentValidation(t *testing.T) {
	s := bivariateSample(20, 14)
	if _, err := CoordinateDescent(s, [][]float64{{0.1}}, 0); err == nil {
		t.Error("grid-count mismatch should fail")
	}
	if _, err := CoordinateDescent(s, [][]float64{{0.2, 0.1}, {0.1}}, 0); err == nil {
		t.Error("descending grid should fail")
	}
	if _, err := CoordinateDescent(s, [][]float64{{-0.1, 0.2}, {0.1}}, 0); err == nil {
		t.Error("negative bandwidth should fail")
	}
	if _, err := CoordinateDescent(s, [][]float64{{0.1}, {}}, 0); err == nil {
		t.Error("empty grid should fail")
	}
}

func TestAnisotropicBandwidths(t *testing.T) {
	// Y depends sharply on X₂ and weakly on X₁: CV should choose a
	// noticeably smaller bandwidth for X₂ than for X₁.
	rng := rand.New(rand.NewSource(15))
	n := 400
	s := Sample{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64(), rng.Float64()
		s.X[i] = []float64{x1, x2}
		s.Y[i] = 0.1*x1 + math.Sin(6*math.Pi*x2) + 0.1*rng.NormFloat64()
	}
	grids, err := DefaultGrids(s, 15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CoordinateDescent(s, grids, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.H[1] < res.H[0]) {
		t.Errorf("expected h₂ < h₁ for the wavy dimension, got %v", res.H)
	}
}

func TestTrivariateCoordinateDescent(t *testing.T) {
	// Three dimensions: the mesh would cost k³ cells; coordinate descent
	// stays linear in d and still reaches a coordinate-wise optimum.
	rng := rand.New(rand.NewSource(33))
	n := 200
	s := Sample{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		s.X[i] = []float64{a, b, c}
		s.Y[i] = a + 0.5*b*b + math.Sin(4*c) + 0.1*rng.NormFloat64()
	}
	grids, err := DefaultGrids(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CoordinateDescent(s, grids, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.H) != 3 {
		t.Fatalf("bandwidth vector length %d", len(res.H))
	}
	base := CVScore(s, res.H, kernel.Epanechnikov)
	for dim := 0; dim < 3; dim++ {
		for _, hc := range grids[dim] {
			h := append([]float64(nil), res.H...)
			h[dim] = hc
			if cv := CVScore(s, h, kernel.Epanechnikov); cv < base-1e-9 {
				t.Errorf("dim %d h=%v improves CV: %v < %v", dim, hc, cv, base)
			}
		}
	}
}
