package mvreg

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/kernel"
)

// Parallel mesh search: the mesh factorises into columns — one fixed
// combination of the non-swept dimensions' bandwidths, served whole by
// a single dimension-0 sweep — and columns are independent, so they
// shard across goroutines the way the univariate parallel selector
// shards observations. Unlike that selector (whose per-worker partial
// score sums merge with plain adds, exact only to ~1 ULP), column
// sharding is bit-identical to the sequential mesh: every column's
// score vector is computed whole by exactly one worker with the same
// workspace arithmetic in the same observation order, each worker takes
// the strict first minimum over its contiguous column range, and the
// merge takes the strict first minimum across workers in column order —
// the same argmin decomposition the sequential odometer performs.

// MeshSearchParallel is MeshSearch with the mesh columns sharded across
// worker goroutines (0 = GOMAXPROCS). Bit-identical to MeshSearch for
// every worker count.
func MeshSearchParallel(s Sample, grids [][]float64, k kernel.Kind, workers int) (Result, error) {
	return MeshSearchParallelContext(context.Background(), s, grids, k, workers)
}

// MeshSearchParallelContext is MeshSearchParallel with cooperative
// cancellation, polled at sweep granularity inside every worker. Kernels
// without a prefix decomposition fall back to the sequential naive mesh.
func MeshSearchParallelContext(ctx context.Context, s Sample, grids [][]float64, k kernel.Kind, workers int) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := validateGrids(s, grids); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if k != kernel.Epanechnikov {
		// The naive per-cell fallback has no column structure worth
		// sharding here; keep one code path and one tie-break proof.
		return meshNaive(ctx, s, grids, k)
	}
	d := s.Dim()
	columns := 1
	for j := 1; j < d; j++ {
		columns *= len(grids[j])
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > columns {
		workers = columns
	}
	if workers <= 1 {
		return meshSweep(ctx, s, grids)
	}

	n := len(s.X)
	k0 := len(grids[0])
	maxH0 := grids[0][k0-1]
	results := make([]Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * columns / workers
			hi := (w + 1) * columns / workers
			ws := AcquireWorkspace(n, d, k0)
			defer ws.Release()
			ws.buildAxisOrder(s, 0)
			otherIdx := make([]int, d)
			h := make([]float64, d)
			best := Result{CV: math.Inf(1)}
			for c := lo; c < hi; c++ {
				// Decode column c into the non-swept indices, dimension 1
				// fastest — the sequential odometer's order, so ascending c
				// enumerates columns exactly as meshSweep visits them.
				rem := c
				for j := 1; j < d; j++ {
					otherIdx[j] = rem % len(grids[j])
					rem /= len(grids[j])
				}
				for j := 1; j < d; j++ {
					h[j] = grids[j][otherIdx[j]]
				}
				scores := ws.scores[:k0]
				zeroFloats(scores)
				for i := 0; i < n; i++ {
					if i&ctxPollMask == 0 {
						if err := ctx.Err(); err != nil {
							errs[w] = err
							return
						}
					}
					ws.fillNeighbours(s, 0, h, i, maxH0)
					weightedEpanechnikovSweep(scores, ws.absd, ws.wy, ws.ww, s.Y[i], grids[0])
				}
				for q := range scores {
					cv := scores[q] / float64(n)
					best.Evals++
					if cv < best.CV {
						best.CV = cv
						h[0] = grids[0][q]
						best.H = append(best.H[:0], h...)
					}
				}
			}
			results[w] = best
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	// Merge in worker (= column) order with the strict first-minimum
	// comparison: identical to scanning the whole mesh sequentially.
	merged := Result{CV: math.Inf(1)}
	for _, r := range results {
		merged.Evals += r.Evals
		if r.H != nil && r.CV < merged.CV {
			merged.CV = r.CV
			merged.H = append(merged.H[:0], r.H...)
		}
	}
	return merged, nil
}
