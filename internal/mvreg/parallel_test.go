package mvreg

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

func parallelSample(n, d int, seed int64) Sample {
	rng := rand.New(rand.NewSource(seed))
	s := Sample{}
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		y := 0.0
		for j, v := range row {
			y += math.Sin(float64(j+2) * v)
		}
		s.X = append(s.X, row)
		s.Y = append(s.Y, y+0.1*rng.NormFloat64())
	}
	return s
}

// TestMeshParallelBitIdentical is the satellite's core claim: sharding
// mesh columns across workers changes nothing — not the selected cell,
// not a single bit of H or CV — for any worker count, including counts
// that do not divide the column count evenly.
func TestMeshParallelBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		s     Sample
		grids [][]float64
	}{
		{"d2", parallelSample(80, 2, 1), [][]float64{mvTestGrid(0.1, 1, 7), mvTestGrid(0.1, 1, 5)}},
		{"d3", parallelSample(48, 3, 2), [][]float64{mvTestGrid(0.15, 1.2, 4), mvTestGrid(0.1, 0.9, 3), mvTestGrid(0.2, 1.1, 5)}},
		{"d1", parallelSample(64, 1, 3), [][]float64{mvTestGrid(0.05, 1.5, 9)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := MeshSearch(tc.s, tc.grids, kernel.Epanechnikov)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			for _, workers := range []int{1, 2, 3, 4, 7, 0} {
				par, err := MeshSearchParallel(tc.s, tc.grids, kernel.Epanechnikov, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if math.Float64bits(par.CV) != math.Float64bits(seq.CV) {
					t.Errorf("workers=%d: CV bits %016x, want %016x", workers, math.Float64bits(par.CV), math.Float64bits(seq.CV))
				}
				if len(par.H) != len(seq.H) {
					t.Fatalf("workers=%d: H length %d, want %d", workers, len(par.H), len(seq.H))
				}
				for j := range seq.H {
					if math.Float64bits(par.H[j]) != math.Float64bits(seq.H[j]) {
						t.Errorf("workers=%d: H[%d] bits %016x, want %016x", workers, j, math.Float64bits(par.H[j]), math.Float64bits(seq.H[j]))
					}
				}
				if par.Evals != seq.Evals {
					t.Errorf("workers=%d: Evals %d, want %d", workers, par.Evals, seq.Evals)
				}
			}
		})
	}
}

// TestMeshParallelTies pins the lowest-index tie-break under sharding: a
// constant-Y sample scores identically at every cell, so the merge must
// return the very first cell — whichever worker owned it.
func TestMeshParallelTies(t *testing.T) {
	s := Sample{}
	for i := 0; i < 24; i++ {
		s.X = append(s.X, []float64{float64(i) / 8, float64(i%5) / 4})
		s.Y = append(s.Y, 1.0)
	}
	grids := [][]float64{mvTestGrid(0.5, 2, 4), mvTestGrid(0.5, 2, 6)}
	seq, err := MeshSearch(s, grids, kernel.Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5} {
		par, err := MeshSearchParallel(s, grids, kernel.Epanechnikov, workers)
		if err != nil {
			t.Fatal(err)
		}
		for j := range seq.H {
			if math.Float64bits(par.H[j]) != math.Float64bits(seq.H[j]) {
				t.Fatalf("workers=%d: tie resolved to %v, sequential chose %v", workers, par.H, seq.H)
			}
		}
	}
}

// TestMeshParallelNaiveFallback: non-Epanechnikov kernels take the
// sequential naive path and must agree with MeshSearch exactly.
func TestMeshParallelNaiveFallback(t *testing.T) {
	s := parallelSample(32, 2, 4)
	grids := [][]float64{mvTestGrid(0.2, 1, 4), mvTestGrid(0.2, 1, 4)}
	seq, err := MeshSearch(s, grids, kernel.Gaussian)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MeshSearchParallel(s, grids, kernel.Gaussian, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(par.CV) != math.Float64bits(seq.CV) {
		t.Errorf("fallback CV bits differ: %016x vs %016x", math.Float64bits(par.CV), math.Float64bits(seq.CV))
	}
}

func TestMeshParallelCancellation(t *testing.T) {
	s := parallelSample(96, 2, 5)
	grids := [][]float64{mvTestGrid(0.1, 1, 8), mvTestGrid(0.1, 1, 8)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MeshSearchParallelContext(ctx, s, grids, kernel.Epanechnikov, 3)
	if err == nil {
		t.Fatal("pre-cancelled context accepted")
	}
	if res.H != nil || res.Evals != 0 {
		t.Fatalf("cancelled search leaked a partial result: %+v", res)
	}
}

// mvTestGrid builds k ascending candidates from lo to hi.
func mvTestGrid(lo, hi float64, k int) []float64 {
	g := make([]float64, k)
	for q := 0; q < k; q++ {
		g[q] = lo + (hi-lo)*float64(q)/float64(k-1)
	}
	return g
}
