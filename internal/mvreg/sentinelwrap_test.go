package mvreg

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/kernel"
)

// TestErrDimensionMatchesThroughWrap pins that ErrDimension stays
// matchable with errors.Is on the two paths that wrap it — Sample
// validation and Predict — plus one more caller-added fmt.Errorf
// layer, which is how the serve API receives it before mapping it to a
// 4xx. A == comparison would fail on every one of these.
func TestErrDimensionMatchesThroughWrap(t *testing.T) {
	ragged := Sample{
		X: [][]float64{{1, 2}, {3}},
		Y: []float64{0, 1},
	}
	if err := ragged.Validate(); !errors.Is(err, ErrDimension) {
		t.Fatalf("Validate on ragged rows returned %v; want an ErrDimension-wrapped error", err)
	}

	s := Sample{
		X: [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}},
		Y: []float64{0, 1, 2, 3},
	}
	m, err := New(s, []float64{0.5, 0.5}, kernel.Gaussian)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, _, err = m.Predict([]float64{1}) // one coordinate against a 2-D model
	if !errors.Is(err, ErrDimension) {
		t.Fatalf("Predict with wrong arity returned %v; want an ErrDimension-wrapped error", err)
	}
	if !errors.Is(fmt.Errorf("api: %w", err), ErrDimension) {
		t.Fatalf("errors.Is failed through a caller-added wrap layer")
	}
}
