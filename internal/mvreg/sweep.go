// The multivariate fast-sum-updating sweep (Langrené & Warin,
// arXiv:1712.00993), the d-dimensional sibling of the univariate
// two-pointer family in internal/bandwidth:
//
//   - one co-sort per axis gives, for every observation, its neighbours
//     in ascending axis distance as the merge of a left and a right run
//     in the sorted order — no per-observation sort;
//   - the other dimensions' product-kernel weights ride along as
//     observation weights w̃_l, so the swept axis sees a weighted
//     univariate problem;
//   - the Epanechnikov prefix decomposition then serves every candidate
//     bandwidth of the swept axis from four compensated prefix sums:
//
//     num(h) = 0.75·(Σ w̃y − Σ w̃y·d²/h²),  den(h) = 0.75·(Σ w̃ − Σ w̃·d²/h²)
//
//     over neighbours with |d| ≤ h.
//
// MeshSearch sweeps dimension 0 (the odometer's fastest axis) so one
// merge per observation serves all k₀ cells of a mesh column, an
// O(k₀)-fold saving over the naive per-cell objective; CoordinateDescent
// sweeps each dimension in turn against its full candidate grid.
package mvreg

import (
	"context"
	"math"

	"repro/internal/mathx"
)

// ctxPollMask polls cancellation every 64 observations inside a sweep —
// frequent enough that a cancelled mesh group stops in microseconds,
// cheap enough to vanish against the merge work.
const ctxPollMask = 63

// meshSweep runs the fast-sum-updating mesh search for the product
// Epanechnikov kernel. Dimension 0 is swept; the remaining dimensions
// are enumerated by the same odometer order as meshNaive (dimension 1
// fastest among them), so cells are visited in the naive order and the
// strict first-minimum comparison reproduces its lowest-index
// tie-break.
func meshSweep(ctx context.Context, s Sample, grids [][]float64) (Result, error) {
	n, d := len(s.X), s.Dim()
	k0 := len(grids[0])
	maxH0 := grids[0][k0-1]
	ws := AcquireWorkspace(n, d, k0)
	defer ws.Release()
	ws.buildAxisOrder(s, 0)
	otherIdx := make([]int, d)
	h := make([]float64, d)
	best := Result{CV: math.Inf(1)}
	for {
		for j := 1; j < d; j++ {
			h[j] = grids[j][otherIdx[j]]
		}
		scores := ws.scores[:k0]
		zeroFloats(scores)
		for i := 0; i < n; i++ {
			if i&ctxPollMask == 0 {
				if err := ctx.Err(); err != nil {
					return Result{}, err
				}
			}
			ws.fillNeighbours(s, 0, h, i, maxH0)
			weightedEpanechnikovSweep(scores, ws.absd, ws.wy, ws.ww, s.Y[i], grids[0])
		}
		for q := range scores {
			cv := scores[q] / float64(n)
			best.Evals++
			if cv < best.CV {
				best.CV = cv
				h[0] = grids[0][q]
				best.H = append(best.H[:0], h...)
			}
		}
		// Advance the non-swept dimensions, dimension 1 fastest —
		// together with the ascending scan over grids[0] above this is
		// exactly meshNaive's odometer order.
		j := 1
		for ; j < d; j++ {
			otherIdx[j]++
			if otherIdx[j] < len(grids[j]) {
				break
			}
			otherIdx[j] = 0
		}
		if j >= d {
			break
		}
	}
	return best, nil
}

// sweepDimension computes CV for every candidate bandwidth of dimension
// dim with the other bandwidths fixed at h. One left/right-run merge per
// observation (stopping at the largest candidate) serves the whole grid.
// The workspace's axis orders must already be built.
func (ws *Workspace) sweepDimension(ctx context.Context, s Sample, h []float64, dim int, grid []float64) ([]float64, error) {
	n := len(s.X)
	maxH := grid[len(grid)-1]
	scores := ws.scores[:len(grid)]
	zeroFloats(scores)
	for i := 0; i < n; i++ {
		if i&ctxPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ws.fillNeighbours(s, dim, h, i, maxH)
		weightedEpanechnikovSweep(scores, ws.absd, ws.wy, ws.ww, s.Y[i], grid)
	}
	for q := range scores {
		scores[q] /= float64(n)
	}
	return scores, nil
}

// sweepDimensionOnce is the standalone form for tests: it acquires a
// workspace, builds the axis orders, and returns a fresh scores slice.
func sweepDimensionOnce(s Sample, h []float64, dim int, grid []float64) []float64 {
	ws := AcquireWorkspace(len(s.X), s.Dim(), len(grid))
	defer ws.Release()
	ws.buildAxisOrders(s)
	scores, err := ws.sweepDimension(context.Background(), s, h, dim, grid)
	if err != nil {
		return nil
	}
	return append([]float64(nil), scores...)
}

// fillNeighbours writes observation i's in-range neighbours into the
// workspace buffers in ascending axis-dim distance: the merge of the
// left and right runs around i's slot in the axis order, cut off at
// maxH (beyond the largest candidate nothing can ever enter a window).
// Each emitted neighbour carries the other dimensions' product weight;
// zero-weight neighbours are dropped — they contribute nothing at any
// candidate.
func (ws *Workspace) fillNeighbours(s Sample, dim int, h []float64, i int, maxH float64) {
	ax := &ws.axes[dim]
	ws.absd = ws.absd[:0]
	ws.wy = ws.wy[:0]
	ws.ww = ws.ww[:0]
	p := ax.pos[i]
	vi := ax.val[p]
	xi := s.X[i]
	l, r := p-1, p+1
	n := len(ax.val)
	for l >= 0 || r < n {
		var dd float64
		var o int
		// Ties take the left run first, matching the univariate
		// two-pointer merge.
		if l >= 0 && (r >= n || vi-ax.val[l] <= ax.val[r]-vi) {
			dd, o = vi-ax.val[l], ax.idx[l]
			l--
		} else {
			dd, o = ax.val[r]-vi, ax.idx[r]
			r++
		}
		if dd >= maxH { // strict: weight at the boundary is exactly 0
			break
		}
		w := otherWeight(xi, s.X[o], h, dim)
		if w == 0 {
			continue
		}
		ws.absd = append(ws.absd, dd)
		ws.wy = append(ws.wy, w*s.Y[o])
		ws.ww = append(ws.ww, w)
	}
}

// otherWeight evaluates the product Epanechnikov kernel between rows xi
// and xl over every dimension except skip. The kernel is inlined — this
// is the sweep's innermost pairwise call, and the arithmetic matches
// kernel.Epanechnikov.Weight term for term so the sweep stays the
// bitwise image of the oracle's weights.
func otherWeight(xi, xl, h []float64, skip int) float64 {
	w := 1.0
	for j := range h {
		if j == skip {
			continue
		}
		u := (xi[j] - xl[j]) / h[j]
		if u < -1 || u > 1 {
			return 0
		}
		w *= 0.75 * (1 - u*u)
	}
	return w
}

// weightedEpanechnikovSweep advances the four compensated prefix sums
// across the ascending candidate grid and adds observation yi's squared
// leave-one-out residual to every candidate's score. Neighbours arrive
// sorted by distance, so each is absorbed exactly once. scores[q] is a
// per-element write through the loop index, not a running sum; the
// loop-carried state lives in the Neumaier accumulators.
//
// Absorption is strict (|d| < h): the Epanechnikov weight at the
// boundary is exactly 0, so excluding |d| = h is mathematically
// identical — but absorbing it would reconstruct that zero as the
// cancellation w̃ − (w̃·d²)/h², which is inexact once w̃·d² rounds
// (unlike the univariate sweep, whose unit weights keep d²/h² = 1
// exact) and can leave a tiny spurious denominator behind a garbage
// fitted value.
func weightedEpanechnikovSweep(scores, absd, wy, ww []float64, yi float64, grid []float64) {
	var sy, syd2, sw, swd2 mathx.NeumaierAccumulator
	ptr := 0
	m := len(absd)
	for q, hc := range grid {
		for ptr < m && absd[ptr] < hc {
			d2 := absd[ptr] * absd[ptr]
			sy.Add(wy[ptr])
			syd2.Add(wy[ptr] * d2)
			sw.Add(ww[ptr])
			swd2.Add(ww[ptr] * d2)
			ptr++
		}
		h2 := hc * hc
		den := 0.75 * (sw.Sum() - swd2.Sum()/h2)
		if den > 0 {
			num := 0.75 * (sy.Sum() - syd2.Sum()/h2)
			r := yi - num/den
			scores[q] += r * r
		}
	}
}

// zeroFloats clears a pooled slice before reuse.
func zeroFloats(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
