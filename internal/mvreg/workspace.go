// Pooled sweep workspaces, mirroring internal/bandwidth's discipline:
// the merge buffers, score slab and per-axis sorted orders for one
// selection live in one Workspace recycled through a sync.Pool, so the
// steady state of a serving process allocates nothing per request. The
// poolpair analyzer enforces the pairing: every AcquireWorkspace must
// Release on all paths.
package mvreg

import (
	"sync"

	"repro/internal/sortx"
)

// axisOrder is one dimension's co-sorted view of the sample.
type axisOrder struct {
	val []float64 // X[:,a] ascending
	idx []int     // original observation index at each sorted position
	pos []int     // pos[i] = sorted position of observation i
}

// Workspace holds every buffer the multivariate sweeps need.
type Workspace struct {
	// absd/wy/ww are one observation's merged in-range neighbours:
	// axis distance, weighted response w̃·y, and weight w̃.
	absd, wy, ww []float64
	// scores accumulates per-candidate residual sums for one axis.
	scores []float64
	// axes caches the per-dimension sorted orders for one sample.
	axes []axisOrder
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// AcquireWorkspace returns a workspace with capacity for n observations,
// d dimensions and k candidates per axis, drawn from the pool. Pair it
// with Release on every path.
func AcquireWorkspace(n, d, k int) *Workspace {
	ws := wsPool.Get().(*Workspace)
	ws.absd = grow(ws.absd, n)
	ws.wy = grow(ws.wy, n)
	ws.ww = grow(ws.ww, n)
	ws.scores = growLen(ws.scores, k)
	if cap(ws.axes) < d {
		ws.axes = make([]axisOrder, d)
	}
	ws.axes = ws.axes[:d]
	for a := range ws.axes {
		ws.axes[a].val = growLen(ws.axes[a].val, n)
		ws.axes[a].pos = growLenInt(ws.axes[a].pos, n)
	}
	return ws
}

// Release returns the workspace to the pool. The buffers carry stale
// data from the previous selection; every user rebuilds or zeroes what
// it reads.
func (ws *Workspace) Release() { wsPool.Put(ws) }

// buildAxisOrder co-sorts axis a: sorted values, the permutation back to
// original indices, and its inverse.
func (ws *Workspace) buildAxisOrder(s Sample, a int) {
	ax := &ws.axes[a]
	for i := range s.X {
		ax.val[i] = s.X[i][a]
	}
	ax.idx = sortx.ArgSort64(ax.val)
	for p, i := range ax.idx {
		ax.pos[i] = p
	}
	// Apply the permutation to the values via the scratch buffer.
	scratch := ws.absd[:cap(ws.absd)][:len(ax.val)]
	copy(scratch, ax.val)
	for p, i := range ax.idx {
		ax.val[p] = scratch[i]
	}
}

// buildAxisOrders builds every dimension's sorted order (coordinate
// descent sweeps each axis in turn; the mesh sweep needs only axis 0).
func (ws *Workspace) buildAxisOrders(s Sample) {
	for a := range ws.axes {
		ws.buildAxisOrder(s, a)
	}
}

// grow returns v with capacity at least n and length 0.
func grow(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, 0, n)
	}
	return v[:0]
}

// growLen returns v with length (and capacity) at least n.
func growLen(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

func growLenInt(v []int, n int) []int {
	if cap(v) < n {
		return make([]int, n)
	}
	return v[:n]
}
