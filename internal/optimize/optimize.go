// Package optimize implements the derivative-free one-dimensional
// minimisers that the paper's R baselines rely on: golden-section search,
// Brent's method, and a 1-D Nelder–Mead, plus a multi-start wrapper.
//
// The paper's central reliability argument is that the CV objective is not
// concave, so these methods can converge to non-global minima depending on
// the starting point — exactly the behaviour Programs 1 and 2 reproduce in
// this repository, and which the grid search avoids. The implementations
// count objective evaluations so the harness can attribute run time.
package optimize

import (
	"errors"
	"math"
)

// Objective is a scalar function to minimise over a closed interval.
type Objective func(x float64) float64

// Result describes the outcome of a minimisation.
type Result struct {
	X     float64 // argmin found
	F     float64 // objective value at X
	Evals int     // number of objective evaluations performed
	Iters int     // iterations of the outer loop
}

// ErrBadBracket is returned when lo >= hi.
var ErrBadBracket = errors.New("optimize: invalid bracket (lo >= hi)")

// invphi = 1/φ and invphi2 = 1/φ² for the golden-section ratios.
var (
	invphi  = (math.Sqrt(5) - 1) / 2
	invphi2 = (3 - math.Sqrt(5)) / 2
)

// GoldenSection minimises f over [lo, hi] by golden-section search,
// stopping when the bracket is narrower than tol or maxIter iterations
// have run. It converges to *a* local minimum inside the bracket; on a
// multimodal objective the result depends on the bracket, which is the
// failure mode the paper attributes to R's optimisers.
func GoldenSection(f Objective, lo, hi, tol float64, maxIter int) (Result, error) {
	if lo >= hi {
		return Result{}, ErrBadBracket
	}
	if tol <= 0 {
		tol = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	a, b := lo, hi
	h := b - a
	c := a + invphi2*h
	d := a + invphi*h
	fc, fd := f(c), f(d)
	evals, iters := 2, 0
	for h > tol && iters < maxIter {
		iters++
		if fc < fd {
			b, d, fd = d, c, fc
			h = b - a
			c = a + invphi2*h
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			h = b - a
			d = a + invphi*h
			fd = f(d)
		}
		evals++
	}
	var x, fx float64
	if fc < fd {
		x, fx = c, fc
	} else {
		x, fx = d, fd
	}
	return Result{X: x, F: fx, Evals: evals, Iters: iters}, nil
}

// Brent minimises f over [lo, hi] with Brent's method (golden-section
// interleaved with successive parabolic interpolation), the algorithm
// behind R's optimize(). tol is the absolute x tolerance.
func Brent(f Objective, lo, hi, tol float64, maxIter int) (Result, error) {
	if lo >= hi {
		return Result{}, ErrBadBracket
	}
	if tol <= 0 {
		tol = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	const cgold = 0.3819660112501051 // 2 - φ
	const zeps = 1e-12
	a, b := lo, hi
	x := a + cgold*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	evals, iters := 1, 0
	var d, e float64
	for iters < maxIter {
		iters++
		xm := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + zeps
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-0.5*(b-a) {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Try a parabolic fit through x, v, w.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etemp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etemp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		evals++
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return Result{X: x, F: fx, Evals: evals, Iters: iters}, nil
}

// NelderMead1D minimises f starting from x0 with a one-dimensional
// Nelder–Mead (reflect/expand/contract/shrink on a 2-point simplex),
// clamped to [lo, hi]. This mirrors R's optim(method="Nelder-Mead")
// applied to the CV objective, including its habit of settling into the
// local minimum nearest the start.
func NelderMead1D(f Objective, x0, lo, hi, tol float64, maxIter int) (Result, error) {
	if lo >= hi {
		return Result{}, ErrBadBracket
	}
	if tol <= 0 {
		tol = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 400
	}
	clamp := func(x float64) float64 {
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	}
	step := (hi - lo) * 0.05
	a := clamp(x0)
	b := clamp(x0 + step)
	if a == b {
		b = clamp(x0 - step)
	}
	fa, fb := f(a), f(b)
	evals, iters := 2, 0
	for iters < maxIter {
		iters++
		if fb < fa { // keep a as the best point
			a, b = b, a
			fa, fb = fb, fa
		}
		if math.Abs(b-a) < tol {
			break
		}
		// Reflect worst (b) through best (a).
		r := clamp(a + (a - b))
		fr := f(r)
		evals++
		switch {
		case fr < fa:
			// Expansion.
			e := clamp(a + 2*(a-b))
			fe := f(e)
			evals++
			if fe < fr {
				b, fb = e, fe
			} else {
				b, fb = r, fr
			}
		case fr < fb:
			b, fb = r, fr
		default:
			// Contraction toward the best point.
			c := clamp(a + 0.5*(b-a))
			fc := f(c)
			evals++
			if fc < fb {
				b, fb = c, fc
			} else {
				// Shrink.
				b = clamp(a + 0.25*(b-a))
				fb = f(b)
				evals++
			}
		}
	}
	if fb < fa {
		a, fa = b, fb
	}
	return Result{X: a, F: fa, Evals: evals, Iters: iters}, nil
}

// MultiStart runs minimize from `starts` evenly spaced starting points in
// [lo, hi] and returns the best result found along with the total
// evaluation count. This is the "run the algorithm multiple times with
// different initial values" advice from the np package documentation that
// the paper quotes.
func MultiStart(f Objective, lo, hi float64, starts int,
	minimize func(f Objective, x0 float64) (Result, error)) (Result, error) {
	if lo >= hi {
		return Result{}, ErrBadBracket
	}
	if starts < 1 {
		starts = 1
	}
	best := Result{F: math.Inf(1)}
	totalEvals, totalIters := 0, 0
	var firstErr error
	for s := 0; s < starts; s++ {
		x0 := lo + (hi-lo)*(float64(s)+0.5)/float64(starts)
		r, err := minimize(f, x0)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		totalEvals += r.Evals
		totalIters += r.Iters
		if r.F < best.F {
			best.X, best.F = r.X, r.F
		}
	}
	if math.IsInf(best.F, 1) {
		if firstErr != nil {
			return Result{}, firstErr
		}
		return Result{}, errors.New("optimize: MultiStart found no finite minimum")
	}
	best.Evals = totalEvals
	best.Iters = totalIters
	return best, nil
}
