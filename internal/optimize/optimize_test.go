package optimize

import (
	"math"
	"testing"
)

func quadratic(c float64) Objective {
	return func(x float64) float64 { return (x - c) * (x - c) }
}

// bimodal has a local minimum near 0.15 (value ≈ 0.03) and the global
// minimum near 0.75 (value ≈ -1).
func bimodal(x float64) float64 {
	return -math.Exp(-100*(x-0.75)*(x-0.75)) + 0.03*math.Cos(20*math.Pi*x) + 0.03
}

func TestGoldenSectionQuadratic(t *testing.T) {
	for _, c := range []float64{0.2, 0.5, 0.9} {
		r, err := GoldenSection(quadratic(c), 0, 1, 1e-10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.X-c) > 1e-8 {
			t.Errorf("golden found %v, want %v", r.X, c)
		}
		if r.Evals < 2 {
			t.Error("eval count not recorded")
		}
	}
}

func TestBrentQuadratic(t *testing.T) {
	for _, c := range []float64{0.1, 0.5, 0.99} {
		r, err := Brent(quadratic(c), 0, 1, 1e-10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.X-c) > 1e-6 {
			t.Errorf("brent found %v, want %v", r.X, c)
		}
	}
}

func TestBrentConvergesFasterThanGolden(t *testing.T) {
	// Parabolic interpolation should need far fewer evaluations on a
	// smooth quartic.
	f := func(x float64) float64 { v := x - 0.37; return v * v * v * v }
	g, _ := GoldenSection(f, 0, 1, 1e-10, 0)
	b, _ := Brent(f, 0, 1, 1e-10, 0)
	if b.Evals >= g.Evals {
		t.Logf("brent evals %d vs golden %d (informational; both converged)", b.Evals, g.Evals)
	}
	if math.Abs(b.X-0.37) > 1e-3 || math.Abs(g.X-0.37) > 1e-3 {
		t.Errorf("quartic minima wrong: brent %v golden %v", b.X, g.X)
	}
}

func TestNelderMead1D(t *testing.T) {
	r, err := NelderMead1D(quadratic(0.6), 0.1, 0, 1, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X-0.6) > 1e-6 {
		t.Errorf("nelder-mead found %v, want 0.6", r.X)
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	// Minimum outside the bracket: the result must stay clamped inside.
	r, err := NelderMead1D(quadratic(2), 0.5, 0, 1, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.X < 0 || r.X > 1 {
		t.Errorf("result %v escaped [0,1]", r.X)
	}
	if math.Abs(r.X-1) > 1e-6 {
		t.Errorf("boundary minimum should be 1, got %v", r.X)
	}
}

func TestLocalMinimumFailureMode(t *testing.T) {
	// This is the paper's criticism of numerical optimisation on a
	// non-concave CV objective: a start near the wrong basin converges to
	// the local, not global, minimum.
	r, err := NelderMead1D(bimodal, 0.12, 0, 1, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X-0.75) < 0.1 {
		t.Skip("optimiser escaped the local basin on this platform; failure mode not demonstrable")
	}
	if r.F < -0.5 {
		t.Errorf("expected a shallow local minimum, got value %v at %v", r.F, r.X)
	}
}

func TestMultiStartRecoversGlobal(t *testing.T) {
	r, err := MultiStart(bimodal, 0, 1, 12, func(f Objective, x0 float64) (Result, error) {
		return NelderMead1D(f, x0, 0, 1, 1e-12, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X-0.75) > 0.02 {
		t.Errorf("multi-start missed the global minimum: %v", r.X)
	}
	if r.Evals <= 0 {
		t.Error("multi-start should aggregate eval counts")
	}
}

func TestBadBracket(t *testing.T) {
	if _, err := GoldenSection(quadratic(0), 1, 0, 0, 0); err != ErrBadBracket {
		t.Error("golden should reject inverted brackets")
	}
	if _, err := Brent(quadratic(0), 1, 1, 0, 0); err != ErrBadBracket {
		t.Error("brent should reject empty brackets")
	}
	if _, err := NelderMead1D(quadratic(0), 0, 2, 1, 0, 0); err != ErrBadBracket {
		t.Error("nelder-mead should reject inverted brackets")
	}
	if _, err := MultiStart(quadratic(0), 1, 0, 3, nil); err != ErrBadBracket {
		t.Error("multi-start should reject inverted brackets")
	}
}

func TestDefaultsApplied(t *testing.T) {
	// tol <= 0 and maxIter <= 0 must fall back to defaults and still
	// converge.
	r, err := Brent(quadratic(0.5), 0, 1, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X-0.5) > 1e-4 {
		t.Errorf("defaults did not converge: %v", r.X)
	}
}

func TestMonotoneObjectiveEndpoints(t *testing.T) {
	// Strictly decreasing objective: minimum at the right endpoint.
	f := func(x float64) float64 { return -x }
	r, err := GoldenSection(f, 0, 1, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.X < 0.99 {
		t.Errorf("golden on monotone objective gave %v, want ≈1", r.X)
	}
	b, err := Brent(f, 0, 1, 1e-8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.X < 0.98 {
		t.Errorf("brent on monotone objective gave %v, want ≈1", b.X)
	}
}

func TestMultiStartAllErrors(t *testing.T) {
	_, err := MultiStart(quadratic(0), 0, 1, 3, func(f Objective, x0 float64) (Result, error) {
		return Result{}, ErrBadBracket
	})
	if err == nil {
		t.Error("multi-start should surface errors when every start fails")
	}
}

func TestEvalCountsAreBounded(t *testing.T) {
	evals := 0
	f := func(x float64) float64 { evals++; return quadratic(0.3)(x) }
	r, err := Brent(f, 0, 1, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Evals != evals {
		t.Errorf("reported evals %d, actual %d", r.Evals, evals)
	}
	if evals > 200 {
		t.Errorf("brent used %d evaluations on a quadratic", evals)
	}
}
