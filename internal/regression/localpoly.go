package regression

import (
	"fmt"
	"math"
)

// Local polynomial regression of arbitrary degree: the general family the
// local-constant (degree 0, the paper's estimator) and local-linear
// (degree 1) estimators belong to. Higher degrees trade variance for
// lower bias on curved functions; Li & Racine (the paper's methodology
// reference) treat the whole family.

// MaxLocalPolyDegree bounds the supported polynomial degree; beyond
// cubic the local design matrices become hopelessly ill-conditioned for
// the bandwidths this library targets.
const MaxLocalPolyDegree = 5

// PredictLocalPoly returns the degree-p local polynomial estimate at x0:
// the intercept of the kernel-weighted least-squares polynomial fitted in
// (X_l − x0). degree 0 reproduces Predict; degree 1 reproduces
// PredictLocalLinear. When the local design is singular the degree is
// reduced until the system solves (ultimately degree 0, the weighted
// mean). The second return is false when no observation carries weight.
func (m *Model) PredictLocalPoly(x0 float64, degree int) (float64, bool) {
	if degree < 0 || degree > MaxLocalPolyDegree {
		panic(fmt.Sprintf("regression: local polynomial degree %d outside [0, %d]", degree, MaxLocalPolyDegree))
	}
	h := m.Bandwidth
	// Moments S_j = Σ w·dʲ (j ≤ 2·degree) and T_j = Σ w·y·dʲ (j ≤ degree).
	var s [2*MaxLocalPolyDegree + 1]float64
	var t [MaxLocalPolyDegree + 1]float64
	any := false
	for l, xl := range m.X {
		w := m.Kernel.Weight((x0 - xl) / h)
		if w == 0 {
			continue
		}
		any = true
		d := xl - x0
		dj := 1.0
		for j := 0; j <= 2*degree; j++ {
			s[j] += w * dj
			if j <= degree {
				t[j] += w * m.Y[l] * dj
			}
			dj *= d
		}
	}
	if !any || s[0] <= 0 {
		return math.NaN(), false
	}
	for p := degree; p >= 1; p-- {
		if beta0, ok := solveNormal(s[:2*p+1], t[:p+1]); ok {
			return beta0, true
		}
	}
	return t[0] / s[0], true
}

// solveNormal solves the (p+1)×(p+1) normal equations A·β = b with
// A[i][j] = S_{i+j}, b[i] = T_i, returning β₀. It reports ok=false when
// the system is numerically singular (relative pivot threshold).
func solveNormal(s []float64, t []float64) (float64, bool) {
	p1 := len(t)
	// Build the augmented matrix.
	a := make([][]float64, p1)
	for i := range a {
		a[i] = make([]float64, p1+1)
		for j := 0; j < p1; j++ {
			a[i][j] = s[i+j]
		}
		a[i][p1] = t[i]
	}
	// Scale rows to unit max for a meaningful pivot threshold.
	for i := range a {
		maxAbs := 0.0
		for j := 0; j < p1; j++ {
			if v := math.Abs(a[i][j]); v > maxAbs {
				maxAbs = v
			}
		}
		if maxAbs == 0 {
			return 0, false
		}
		for j := range a[i] {
			a[i][j] /= maxAbs
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < p1; col++ {
		piv := col
		for r := col + 1; r < p1; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-10 {
			return 0, false
		}
		a[col], a[piv] = a[piv], a[col]
		for r := col + 1; r < p1; r++ {
			f := a[r][col] / a[col][col]
			for j := col; j <= p1; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	// Back substitution.
	beta := make([]float64, p1)
	for i := p1 - 1; i >= 0; i-- {
		v := a[i][p1]
		for j := i + 1; j < p1; j++ {
			v -= a[i][j] * beta[j]
		}
		beta[i] = v / a[i][i]
	}
	for _, b := range beta {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return 0, false
		}
	}
	return beta[0], true
}
