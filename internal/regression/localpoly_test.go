package regression

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

func polyData(coefs []float64, n int, noise float64, seed int64) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n-1)
		v := 0.0
		xp := 1.0
		for _, c := range coefs {
			v += c * xp
			xp *= x[i]
		}
		y[i] = v + noise*rng.NormFloat64()
	}
	return x, y
}

func TestLocalPolyDegreeZeroEqualsPredict(t *testing.T) {
	x, y := polyData([]float64{1, 2, -3}, 80, 0.1, 1)
	m := mustModel(t, x, y, 0.2, kernel.Epanechnikov)
	for _, x0 := range []float64{0.1, 0.5, 0.9} {
		a, okA := m.Predict(x0)
		b, okB := m.PredictLocalPoly(x0, 0)
		if okA != okB || math.Abs(a-b) > 1e-12 {
			t.Errorf("degree 0 at %v: %v vs Predict %v", x0, b, a)
		}
	}
}

func TestLocalPolyDegreeOneEqualsLocalLinear(t *testing.T) {
	x, y := polyData([]float64{0.5, 1, 2}, 100, 0.05, 2)
	m := mustModel(t, x, y, 0.15, kernel.Epanechnikov)
	for _, x0 := range []float64{0.2, 0.5, 0.8} {
		a, okA := m.PredictLocalLinear(x0)
		b, okB := m.PredictLocalPoly(x0, 1)
		if okA != okB || math.Abs(a-b) > 1e-9 {
			t.Errorf("degree 1 at %v: %v vs PredictLocalLinear %v", x0, b, a)
		}
	}
}

func TestLocalPolyExactOnPolynomials(t *testing.T) {
	// A degree-p local polynomial fit reproduces a global polynomial of
	// degree ≤ p exactly (no noise), including at the boundary.
	cases := []struct {
		degree int
		coefs  []float64
	}{
		{1, []float64{2, -1}},
		{2, []float64{1, 0, 3}},
		{3, []float64{0.5, 1, -2, 4}},
	}
	for _, c := range cases {
		x, y := polyData(c.coefs, 120, 0, int64(c.degree))
		m := mustModel(t, x, y, 0.25, kernel.Epanechnikov)
		for _, x0 := range []float64{0, 0.3, 0.77, 1} {
			got, ok := m.PredictLocalPoly(x0, c.degree)
			want := 0.0
			xp := 1.0
			for _, cf := range c.coefs {
				want += cf * xp
				xp *= x0
			}
			if !ok || math.Abs(got-want) > 1e-7 {
				t.Errorf("degree %d at %v: %v, want %v", c.degree, x0, got, want)
			}
		}
	}
}

func TestLocalPolyBiasOrdering(t *testing.T) {
	// On a strongly curved function with a wide bandwidth, higher degree
	// should reduce interior bias.
	n := 400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n-1)
		y[i] = math.Sin(3 * x[i] * math.Pi / 2)
	}
	m := mustModel(t, x, y, 0.3, kernel.Epanechnikov)
	x0 := 0.5
	truth := math.Sin(3 * x0 * math.Pi / 2)
	e0, _ := m.PredictLocalPoly(x0, 0)
	e2, _ := m.PredictLocalPoly(x0, 2)
	if math.Abs(e2-truth) > math.Abs(e0-truth)+1e-9 {
		t.Errorf("degree 2 bias (%v) should not exceed degree 0 bias (%v)",
			math.Abs(e2-truth), math.Abs(e0-truth))
	}
}

func TestLocalPolySingularFallback(t *testing.T) {
	// All weight on one x value: every degree must fall back to the
	// weighted mean rather than fail.
	x := []float64{0.5, 0.5, 0.5}
	y := []float64{1, 2, 3}
	m := mustModel(t, x, y, 0.2, kernel.Epanechnikov)
	for degree := 0; degree <= 3; degree++ {
		got, ok := m.PredictLocalPoly(0.5, degree)
		if !ok || math.Abs(got-2) > 1e-9 {
			t.Errorf("degree %d singular fallback = %v, %v", degree, got, ok)
		}
	}
	// Two distinct x values: degree 3 is unidentified, must degrade
	// gracefully to a solvable degree.
	x2 := []float64{0.4, 0.6, 0.4, 0.6}
	y2 := []float64{1, 2, 1, 2}
	m2 := mustModel(t, x2, y2, 0.5, kernel.Epanechnikov)
	got, ok := m2.PredictLocalPoly(0.5, 3)
	if !ok || math.IsNaN(got) {
		t.Errorf("two-point degree-3 fit = %v, %v", got, ok)
	}
	if math.Abs(got-1.5) > 1e-6 {
		t.Errorf("two-point fit at midpoint = %v, want 1.5", got)
	}
}

func TestLocalPolyNoWeight(t *testing.T) {
	x := []float64{0, 1}
	y := []float64{1, 2}
	m := mustModel(t, x, y, 0.1, kernel.Epanechnikov)
	if _, ok := m.PredictLocalPoly(0.5, 2); ok {
		t.Error("no-weight point should report ok=false")
	}
}

func TestLocalPolyDegreeBounds(t *testing.T) {
	x, y := polyData([]float64{1}, 10, 0, 9)
	m := mustModel(t, x, y, 0.5, kernel.Epanechnikov)
	for _, bad := range []int{-1, MaxLocalPolyDegree + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("degree %d should panic", bad)
				}
			}()
			m.PredictLocalPoly(0.5, bad)
		}()
	}
}
