// Package regression implements the Nadaraya–Watson local-constant kernel
// regression estimator the paper targets (its §IV: "the most commonly used
// kernel regression estimator and the default in the common R package np"),
// together with the leave-one-out variant that the cross-validation
// objective is built from, a local-linear alternative, and the
// leave-one-out cross-validated confidence bands the paper lists as a
// natural extension of its method.
package regression

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/kernel"
)

// ErrBandwidth is returned when a non-positive bandwidth is supplied.
var ErrBandwidth = errors.New("regression: bandwidth must be positive")

// Model is a fitted kernel regression: the training sample plus the
// smoothing configuration. It is cheap to construct; all work happens at
// prediction time, as is usual for memory-based smoothers.
type Model struct {
	X, Y      []float64
	Bandwidth float64
	Kernel    kernel.Kind
}

// New validates the inputs and returns a Model. X and Y must be the same
// length with at least two observations, and h must be positive.
func New(x, y []float64, h float64, k kernel.Kind) (*Model, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("regression: X has %d observations, Y has %d", len(x), len(y))
	}
	if len(x) < 2 {
		return nil, fmt.Errorf("regression: need at least 2 observations, have %d", len(x))
	}
	if !(h > 0) {
		return nil, ErrBandwidth
	}
	return &Model{X: x, Y: y, Bandwidth: h, Kernel: k}, nil
}

// Predict returns the Nadaraya–Watson estimate ĝ(x0) =
// Σ_l Y_l K((x0−X_l)/h) / Σ_l K((x0−X_l)/h). The second return value
// reports whether the denominator was non-zero (the M(·) indicator of the
// paper's eq. 1); when it is false the estimate is NaN.
func (m *Model) Predict(x0 float64) (float64, bool) {
	var num, den float64
	h := m.Bandwidth
	for l, xl := range m.X {
		w := m.Kernel.Weight((x0 - xl) / h)
		num += m.Y[l] * w
		den += w
	}
	if den <= 0 {
		return math.NaN(), false
	}
	return num / den, true
}

// PredictGrid evaluates the estimator at each point of xs and returns the
// estimates; points with a zero denominator yield NaN.
func (m *Model) PredictGrid(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x0 := range xs {
		out[i], _ = m.Predict(x0)
	}
	return out
}

// LeaveOneOut returns ĝ_{−i}(X_i) for every training observation — the
// quantity inside the paper's CV objective (its eq. 2) — along with the
// M(X_i) indicators. Cost is O(n²); the bandwidth package provides the
// paper's faster grid-of-bandwidths version.
func (m *Model) LeaveOneOut() (ghat []float64, ok []bool) {
	n := len(m.X)
	ghat = make([]float64, n)
	ok = make([]bool, n)
	h := m.Bandwidth
	for i := 0; i < n; i++ {
		var num, den float64
		xi := m.X[i]
		for l := 0; l < n; l++ {
			if l == i {
				continue
			}
			w := m.Kernel.Weight((xi - m.X[l]) / h)
			num += m.Y[l] * w
			den += w
		}
		if den > 0 {
			ghat[i] = num / den
			ok[i] = true
		} else {
			ghat[i] = math.NaN()
		}
	}
	return ghat, ok
}

// CVScore returns the least-squares leave-one-out cross-validation score
// CV(h) = n⁻¹ Σ (Y_i − ĝ_{−i}(X_i))² M(X_i) for this model's bandwidth —
// the paper's eq. 1 evaluated directly.
func (m *Model) CVScore() float64 {
	ghat, ok := m.LeaveOneOut()
	var s float64
	for i, g := range ghat {
		if ok[i] {
			d := m.Y[i] - g
			s += d * d
		}
	}
	return s / float64(len(m.X))
}

// Residuals returns Y_i − ĝ(X_i) using the full-sample (not leave-one-out)
// fit; NaN where the denominator vanished.
func (m *Model) Residuals() []float64 {
	res := make([]float64, len(m.X))
	for i, xi := range m.X {
		g, ok := m.Predict(xi)
		if ok {
			res[i] = m.Y[i] - g
		} else {
			res[i] = math.NaN()
		}
	}
	return res
}

// PredictLocalLinear returns the local-linear estimate at x0: the
// intercept of a kernel-weighted least-squares line fitted around x0.
// Local-linear fits remove the boundary bias of the local-constant
// estimator; the paper mentions it as the alternative it does not use.
// The second return is false when the weighted design is singular.
func (m *Model) PredictLocalLinear(x0 float64) (float64, bool) {
	var s0, s1, s2, t0, t1 float64
	h := m.Bandwidth
	for l, xl := range m.X {
		w := m.Kernel.Weight((x0 - xl) / h)
		if w == 0 {
			continue
		}
		d := xl - x0
		s0 += w
		s1 += w * d
		s2 += w * d * d
		t0 += w * m.Y[l]
		t1 += w * d * m.Y[l]
	}
	det := s0*s2 - s1*s1
	if s0 <= 0 {
		return math.NaN(), false
	}
	if math.Abs(det) < 1e-300 {
		// Degenerate design (all weight on one x); fall back to the
		// local-constant value, which is well defined.
		return t0 / s0, true
	}
	return (s2*t0 - s1*t1) / det, true
}

// Derivative returns the local-linear slope estimate at x0 — the
// nonparametric marginal effect ∂E[Y|X=x]/∂x that applied econometrics
// reads off these regressions. The second return is false when the local
// design cannot identify a slope (no weight, or all mass at one point).
func (m *Model) Derivative(x0 float64) (float64, bool) {
	var s0, s1, s2, t0, t1 float64
	h := m.Bandwidth
	for l, xl := range m.X {
		w := m.Kernel.Weight((x0 - xl) / h)
		if w == 0 {
			continue
		}
		d := xl - x0
		s0 += w
		s1 += w * d
		s2 += w * d * d
		t0 += w * m.Y[l]
		t1 += w * d * m.Y[l]
	}
	if s0 <= 0 {
		return math.NaN(), false
	}
	det := s0*s2 - s1*s1
	if !(det > 1e-12*s0*s2) {
		return math.NaN(), false
	}
	return (s0*t1 - s1*t0) / det, true
}

// Band is a pointwise confidence band around the regression estimate.
type Band struct {
	X, Fit, Lower, Upper []float64
}

// ConfidenceBand computes pointwise approximate confidence bands on the
// regression curve over xs at the given normal critical value z (1.96 for
// 95%). The variance estimate at x0 is σ̂²(x0)·Σw²/(Σw)², where σ̂²(x0) is
// the kernel-weighted mean of squared leave-one-out residuals — the
// LOO-CV confidence-interval construction the paper's §II flags as a
// direct application of its machinery.
func (m *Model) ConfidenceBand(xs []float64, z float64) (Band, error) {
	if !(z > 0) {
		return Band{}, fmt.Errorf("regression: critical value must be positive, got %g", z)
	}
	n := len(m.X)
	ghat, ok := m.LeaveOneOut()
	loo2 := make([]float64, n)
	for i := range loo2 {
		if ok[i] {
			d := m.Y[i] - ghat[i]
			loo2[i] = d * d
		} else {
			loo2[i] = math.NaN()
		}
	}
	b := Band{
		X:     append([]float64(nil), xs...),
		Fit:   make([]float64, len(xs)),
		Lower: make([]float64, len(xs)),
		Upper: make([]float64, len(xs)),
	}
	h := m.Bandwidth
	for j, x0 := range xs {
		var sw, sw2, num, varNum float64
		for l, xl := range m.X {
			w := m.Kernel.Weight((x0 - xl) / h)
			if w == 0 {
				continue
			}
			sw += w
			sw2 += w * w
			num += w * m.Y[l]
			if !math.IsNaN(loo2[l]) {
				varNum += w * loo2[l]
			}
		}
		if sw <= 0 {
			b.Fit[j], b.Lower[j], b.Upper[j] = math.NaN(), math.NaN(), math.NaN()
			continue
		}
		fit := num / sw
		sigma2 := varNum / sw
		se := math.Sqrt(sigma2 * sw2 / (sw * sw))
		b.Fit[j] = fit
		b.Lower[j] = fit - z*se
		b.Upper[j] = fit + z*se
	}
	return b, nil
}

// EffectiveN returns the kernel-weighted effective number of observations
// contributing at x0: (Σw)²/Σw². It is a diagnostic for bandwidth choice —
// values near 1 mean the estimate interpolates single points.
func (m *Model) EffectiveN(x0 float64) float64 {
	var sw, sw2 float64
	h := m.Bandwidth
	for _, xl := range m.X {
		w := m.Kernel.Weight((x0 - xl) / h)
		sw += w
		sw2 += w * w
	}
	if sw2 == 0 {
		return 0
	}
	return sw * sw / sw2
}
