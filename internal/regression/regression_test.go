package regression

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/kernel"
)

func mustModel(t *testing.T, x, y []float64, h float64, k kernel.Kind) *Model {
	t.Helper()
	m, err := New(x, y, h, k)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]float64{1, 2}, []float64{1}, 0.5, kernel.Epanechnikov); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := New([]float64{1}, []float64{1}, 0.5, kernel.Epanechnikov); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := New([]float64{1, 2}, []float64{1, 2}, 0, kernel.Epanechnikov); err != ErrBandwidth {
		t.Error("zero bandwidth should fail with ErrBandwidth")
	}
	if _, err := New([]float64{1, 2}, []float64{1, 2}, math.NaN(), kernel.Epanechnikov); err != ErrBandwidth {
		t.Error("NaN bandwidth should fail")
	}
}

func TestPredictConstantY(t *testing.T) {
	// With constant Y the weighted mean is exactly that constant
	// wherever the denominator is positive.
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	y := []float64{3, 3, 3, 3, 3}
	m := mustModel(t, x, y, 0.2, kernel.Epanechnikov)
	for _, x0 := range []float64{0.1, 0.25, 0.5} {
		got, ok := m.Predict(x0)
		if !ok || math.Abs(got-3) > 1e-12 {
			t.Errorf("Predict(%v) = %v, %v", x0, got, ok)
		}
	}
}

func TestPredictEmptyNeighbourhood(t *testing.T) {
	x := []float64{0, 1}
	y := []float64{0, 1}
	m := mustModel(t, x, y, 0.1, kernel.Epanechnikov)
	got, ok := m.Predict(0.5)
	if ok || !math.IsNaN(got) {
		t.Errorf("prediction in an empty neighbourhood should be (NaN, false), got (%v, %v)", got, ok)
	}
}

func TestPredictManual(t *testing.T) {
	// Hand-calculated Nadaraya–Watson value at x0 = 0 with h = 1:
	// weights K(0)=0.75, K(0.5)=0.5625, K(1)=0.
	x := []float64{0, 0.5, 1}
	y := []float64{1, 2, 100}
	m := mustModel(t, x, y, 1, kernel.Epanechnikov)
	got, ok := m.Predict(0)
	want := (0.75*1 + 0.5625*2) / (0.75 + 0.5625)
	if !ok || math.Abs(got-want) > 1e-12 {
		t.Errorf("Predict(0) = %v, want %v", got, want)
	}
}

func TestPredictGrid(t *testing.T) {
	d := data.GeneratePaper(200, 1)
	m := mustModel(t, d.X, d.Y, 0.1, kernel.Epanechnikov)
	xs := []float64{0.2, 0.5, 0.8}
	got := m.PredictGrid(xs)
	for i, x0 := range xs {
		want, _ := m.Predict(x0)
		if got[i] != want {
			t.Errorf("grid[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestConsistencyOnPaperDGP(t *testing.T) {
	// With plenty of data and a reasonable bandwidth, the NW estimate
	// should track the true conditional mean.
	d := data.GeneratePaper(4000, 9)
	m := mustModel(t, d.X, d.Y, 0.05, kernel.Epanechnikov)
	for _, x0 := range []float64{0.2, 0.4, 0.6, 0.8} {
		got, ok := m.Predict(x0)
		want := data.Paper.TrueMean(x0)
		if !ok || math.Abs(got-want) > 0.1 {
			t.Errorf("ĝ(%v) = %v, want ≈ %v", x0, got, want)
		}
	}
}

func TestLeaveOneOutExcludesSelf(t *testing.T) {
	// Three points where the middle's LOO estimate must be the weighted
	// mean of only its neighbours.
	x := []float64{0, 0.5, 1}
	y := []float64{1, 50, 3}
	m := mustModel(t, x, y, 1, kernel.Epanechnikov)
	ghat, ok := m.LeaveOneOut()
	if !ok[1] {
		t.Fatal("middle observation should have neighbours")
	}
	w := kernel.Epanechnikov.Weight(0.5) // both neighbours at distance 0.5
	want := (w*1 + w*3) / (2 * w)
	if math.Abs(ghat[1]-want) > 1e-12 {
		t.Errorf("LOO(1) = %v, want %v (self must be excluded)", ghat[1], want)
	}
}

func TestLeaveOneOutIsolatedPoint(t *testing.T) {
	x := []float64{0, 0.01, 5}
	y := []float64{1, 2, 3}
	m := mustModel(t, x, y, 0.1, kernel.Epanechnikov)
	ghat, ok := m.LeaveOneOut()
	if ok[2] || !math.IsNaN(ghat[2]) {
		t.Error("isolated observation should have M = 0 and NaN estimate")
	}
	if !ok[0] || !ok[1] {
		t.Error("paired observations should have valid LOO estimates")
	}
}

func TestCVScoreMatchesDefinition(t *testing.T) {
	d := data.GeneratePaper(150, 4)
	m := mustModel(t, d.X, d.Y, 0.08, kernel.Epanechnikov)
	ghat, ok := m.LeaveOneOut()
	var want float64
	for i := range ghat {
		if ok[i] {
			r := d.Y[i] - ghat[i]
			want += r * r
		}
	}
	want /= float64(len(d.X))
	if got := m.CVScore(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CVScore = %v, want %v", got, want)
	}
}

func TestResiduals(t *testing.T) {
	d := data.GeneratePaper(100, 6)
	m := mustModel(t, d.X, d.Y, 0.2, kernel.Epanechnikov)
	res := m.Residuals()
	for i, r := range res {
		fit, ok := m.Predict(d.X[i])
		if !ok {
			if !math.IsNaN(r) {
				t.Errorf("residual %d should be NaN", i)
			}
			continue
		}
		if math.Abs(r-(d.Y[i]-fit)) > 1e-12 {
			t.Errorf("residual %d = %v", i, r)
		}
	}
}

func TestLocalLinearExactOnLine(t *testing.T) {
	// A local-linear fit reproduces a straight line exactly, including
	// at the boundary — which the local-constant estimator cannot.
	n := 50
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n-1)
		y[i] = 2 + 3*x[i]
	}
	m := mustModel(t, x, y, 0.3, kernel.Epanechnikov)
	for _, x0 := range []float64{0, 0.25, 0.5, 1} {
		got, ok := m.PredictLocalLinear(x0)
		want := 2 + 3*x0
		if !ok || math.Abs(got-want) > 1e-9 {
			t.Errorf("local linear at %v = %v, want %v", x0, got, want)
		}
		// Local constant is biased at the boundary.
		lc, _ := m.Predict(0.0)
		if math.Abs(lc-2) < 1e-9 && x0 == 0 {
			t.Log("local constant unexpectedly exact at boundary")
		}
	}
}

func TestLocalLinearDegenerateDesign(t *testing.T) {
	// All mass at a single x: slope unidentifiable, falls back to the
	// weighted mean.
	x := []float64{0.5, 0.5, 0.5}
	y := []float64{1, 2, 3}
	m := mustModel(t, x, y, 0.2, kernel.Epanechnikov)
	got, ok := m.PredictLocalLinear(0.5)
	if !ok || math.Abs(got-2) > 1e-12 {
		t.Errorf("degenerate local linear = %v, %v, want 2", got, ok)
	}
	// Far away: no weight at all.
	if _, ok := m.PredictLocalLinear(5); ok {
		t.Error("no-weight local linear should report ok=false")
	}
}

func TestConfidenceBand(t *testing.T) {
	d := data.GeneratePaper(800, 12)
	m := mustModel(t, d.X, d.Y, 0.08, kernel.Epanechnikov)
	xs := []float64{0.2, 0.4, 0.6, 0.8}
	b, err := m.ConfidenceBand(xs, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if !(b.Lower[i] < b.Fit[i] && b.Fit[i] < b.Upper[i]) {
			t.Errorf("band ordering violated at %v: [%v, %v, %v]", xs[i], b.Lower[i], b.Fit[i], b.Upper[i])
		}
		// The band half-width should be modest with n = 800.
		if b.Upper[i]-b.Lower[i] > 1.0 {
			t.Errorf("band too wide at %v: %v", xs[i], b.Upper[i]-b.Lower[i])
		}
	}
	if _, err := m.ConfidenceBand(xs, 0); err == nil {
		t.Error("non-positive critical value should fail")
	}
}

func TestConfidenceBandEmptyNeighbourhood(t *testing.T) {
	x := []float64{0, 1}
	y := []float64{0, 1}
	m := mustModel(t, x, y, 0.05, kernel.Epanechnikov)
	b, err := m.ConfidenceBand([]float64{0.5}, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(b.Fit[0]) {
		t.Error("empty neighbourhood should give NaN band")
	}
}

func TestEffectiveN(t *testing.T) {
	d := data.GeneratePaper(1000, 2)
	m1 := mustModel(t, d.X, d.Y, 0.02, kernel.Epanechnikov)
	m2 := mustModel(t, d.X, d.Y, 0.3, kernel.Epanechnikov)
	e1 := m1.EffectiveN(0.5)
	e2 := m2.EffectiveN(0.5)
	if !(e1 < e2) {
		t.Errorf("effective n should grow with bandwidth: %v vs %v", e1, e2)
	}
	if e2 > float64(len(d.X)) {
		t.Errorf("effective n cannot exceed n: %v", e2)
	}
	if m1.EffectiveN(50) != 0 {
		t.Error("no-weight point should have effective n 0")
	}
}

func TestGaussianKernelNeverEmpty(t *testing.T) {
	x := []float64{0, 10}
	y := []float64{1, 2}
	m := mustModel(t, x, y, 0.5, kernel.Gaussian)
	if _, ok := m.Predict(5); !ok {
		t.Error("gaussian kernel should always have positive denominator")
	}
}

func TestDerivative(t *testing.T) {
	// Exact on a line, approximate on a curve.
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n-1)
		y[i] = 1 + 4*x[i]
	}
	m := mustModel(t, x, y, 0.2, kernel.Epanechnikov)
	for _, x0 := range []float64{0.2, 0.5, 0.8} {
		got, ok := m.Derivative(x0)
		if !ok || math.Abs(got-4) > 1e-9 {
			t.Errorf("slope at %v = %v, want 4", x0, got)
		}
	}
	// Quadratic: slope 20x + 0.5 on the paper DGP's mean function.
	d := data.GeneratePaper(4000, 3)
	mq := mustModel(t, d.X, d.Y, 0.05, kernel.Epanechnikov)
	for _, x0 := range []float64{0.3, 0.6} {
		got, ok := mq.Derivative(x0)
		want := 0.5 + 20*x0
		if !ok || math.Abs(got-want) > 1.5 {
			t.Errorf("paper-DGP slope at %v = %v, want ≈ %v", x0, got, want)
		}
	}
	// Unidentified slope.
	flat := mustModel(t, []float64{0.5, 0.5, 0.5}, []float64{1, 2, 3}, 0.1, kernel.Epanechnikov)
	if _, ok := flat.Derivative(0.5); ok {
		t.Error("degenerate design should not identify a slope")
	}
	if _, ok := m.Derivative(10); ok {
		t.Error("no-weight point should not identify a slope")
	}
}
