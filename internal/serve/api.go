package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"repro/kernreg"
)

// HTTP JSON API. Routes (Go 1.22 method patterns):
//
//	POST /v1/select         — bandwidth selection
//	POST /v1/fit-predict    — selection (or given h) + prediction at points
//	GET  /healthz           — liveness; 503 while draining
//	GET  /metrics           — counters and latency histograms as JSON
//	GET  /v1/devices        — fleet device health (see fleet.go)
//	POST /v1/devices/inject — fault injection, only with FaultInjection
//
// Error mapping: malformed or over-limit bodies → 400/413 before the
// pool is involved; a full queue → 429; draining → 503; a request that
// exceeds its compute deadline → 504.

// SelectRequest is the body of POST /v1/select.
type SelectRequest struct {
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
	// Method names the search algorithm (kernreg.ParseMethod); empty
	// means "sorted".
	Method string `json:"method,omitempty"`
	// Kernel names the kernel function; empty means "epanechnikov".
	Kernel string `json:"kernel,omitempty"`
	// GridSize is the number of candidate bandwidths; 0 means 50.
	GridSize int `json:"grid_size,omitempty"`
	// GridMin/GridMax override the paper's default grid range when both
	// are set.
	GridMin float64 `json:"grid_min,omitempty"`
	GridMax float64 `json:"grid_max,omitempty"`
	// KeepScores returns CV(h) for every grid point.
	KeepScores bool `json:"keep_scores,omitempty"`
	// Stable toggles compensated summation in the grid-search hot loops
	// (kernreg.Stable). Omitted or null means on — the accuracy default;
	// false requests the paper's plain float32/float64 accumulation for
	// ablation runs.
	Stable *bool `json:"stable,omitempty"`
	// Bags, BagSize and Seed configure "method": "bagged" (pointers so an
	// explicit zero or negative value is distinguishable from absent and
	// rejected with a crisp message). Omitted values take the large-n
	// defaults: 20 bags of size min(4096, max(512, ⌈n^0.7⌉)), seed 0.
	Bags    *int   `json:"bags,omitempty"`
	BagSize *int   `json:"bag_size,omitempty"`
	Seed    *int64 `json:"seed,omitempty"`
	// Aggregation selects how "method": "bagged" combines the per-bag
	// winners: "mean" (default) or "median".
	Aggregation string `json:"aggregation,omitempty"`
	// XMatrix and Mesh configure "method": "mv" — multivariate selection
	// over the rows of x_matrix. Mesh=true searches the full Cartesian
	// grid (grid_size candidates per dimension, default 20) with the
	// fast-sum-updating sweep; false runs coordinate descent.
	XMatrix [][]float64 `json:"x_matrix,omitempty"`
	Mesh    bool        `json:"mesh,omitempty"`
}

// SelectResponse is the body of a successful /v1/select.
type SelectResponse struct {
	Bandwidth float64 `json:"bandwidth"`
	// CV is null when the score is not finite (degenerate samples).
	CV     *float64   `json:"cv"`
	Index  int        `json:"index"`
	Method string     `json:"method"`
	N      int        `json:"n"`
	Scores []*float64 `json:"scores,omitempty"`
	// Requeues and Degraded report the fleet scheduler's self-healing
	// bookkeeping for "method": "fleet"; both are omitted (zero) for the
	// host-side methods and for healthy fleet runs.
	Requeues int `json:"requeues,omitempty"`
	Degraded int `json:"degraded_devices,omitempty"`
	// BagCVVariance reports the unbiased sample variance of the per-bag
	// CV minima for "method": "bagged" (0 on the degenerate m == n
	// path); omitted for every other method.
	BagCVVariance *float64 `json:"bag_cv_variance,omitempty"`
	// Bandwidths, Evals and Sweeps report a "method": "mv" selection (the
	// scalar Bandwidth is 0 and Index is -1 there — no univariate grid
	// exists).
	Bandwidths []float64 `json:"bandwidths,omitempty"`
	Evals      int       `json:"evals,omitempty"`
	Sweeps     int       `json:"sweeps,omitempty"`
	ElapsedMs  float64   `json:"elapsed_ms"`
}

// FitPredictRequest is the body of POST /v1/fit-predict.
type FitPredictRequest struct {
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
	// Bandwidth fixes h; 0 selects it first with the sorted search.
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Kernel names the kernel function; empty means "epanechnikov".
	Kernel string `json:"kernel,omitempty"`
	// Points are the locations to predict at.
	Points []float64 `json:"points"`
}

// FitPredictResponse is the body of a successful /v1/fit-predict.
type FitPredictResponse struct {
	Bandwidth float64 `json:"bandwidth"`
	// Predictions align with Points; null where no observation carries
	// weight (the estimate is undefined there).
	Predictions []*float64 `json:"predictions"`
	ElapsedMs   float64    `json:"elapsed_ms"`
}

// httpError is a decode/validation failure with its HTTP status. The
// fuzz target asserts every decode failure is 4xx — encoding the status
// in the type keeps that property checkable without a running server.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func tooLarge(format string, args ...any) *httpError {
	return &httpError{status: http.StatusRequestEntityTooLarge, msg: fmt.Sprintf(format, args...)}
}

// decodeJSON decodes exactly one strict JSON object from body.
func decodeJSON(body io.Reader, dst any) *httpError {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("invalid JSON body: %v", err)
	}
	if dec.More() {
		return badRequest("invalid JSON body: trailing data after object")
	}
	return nil
}

// checkSample validates the common x/y constraints against the limits.
func checkSample(x, y []float64, cfg Config) *httpError {
	if len(x) != len(y) {
		return badRequest("x has %d observations, y has %d", len(x), len(y))
	}
	if len(x) < 2 {
		return badRequest("need at least 2 observations, have %d", len(x))
	}
	if len(x) > cfg.MaxN {
		return tooLarge("n=%d exceeds the limit of %d observations", len(x), cfg.MaxN)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return badRequest("x[%d] is not finite", i)
		}
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return badRequest("y[%d] is not finite", i)
		}
	}
	return nil
}

// decodeSelectRequest parses and validates a /v1/select body, returning
// the kernreg options it maps to. All failures are 4xx by construction.
func decodeSelectRequest(body io.Reader, cfg Config) (*SelectRequest, []kernreg.Option, *httpError) {
	var req SelectRequest
	if herr := decodeJSON(body, &req); herr != nil {
		return nil, nil, herr
	}
	if req.Method == "mv" {
		// The multivariate method has its own sample shape (x_matrix) and
		// admission limits; it shares none of the kernreg options.
		if herr := checkMVSelect(&req, cfg); herr != nil {
			return nil, nil, herr
		}
		return &req, nil, nil
	}
	if len(req.XMatrix) != 0 {
		return nil, nil, badRequest("x_matrix requires \"method\": \"mv\", got %q", req.Method)
	}
	if req.Mesh {
		return nil, nil, badRequest("mesh requires \"method\": \"mv\", got %q", req.Method)
	}
	if herr := checkSample(req.X, req.Y, cfg); herr != nil {
		return nil, nil, herr
	}
	var opts []kernreg.Option
	switch {
	case req.Method == "fleet":
		// "fleet" is served by the device fleet, not kernreg; it keeps
		// the shared grid/score options but takes its own admission
		// limit (every kernel thread is simulated on the host CPU) and
		// supports only the device program's default kernel.
		if len(req.X) > fleetMaxN {
			return nil, nil, tooLarge("n=%d exceeds the fleet limit of %d observations", len(req.X), fleetMaxN)
		}
		if req.Kernel != "" && req.Kernel != "epanechnikov" {
			return nil, nil, badRequest("method \"fleet\" supports only the epanechnikov kernel, got %q", req.Kernel)
		}
	case req.Method != "":
		m, err := kernreg.ParseMethod(req.Method)
		if err != nil {
			return nil, nil, badRequest("unknown method %q", req.Method)
		}
		opts = append(opts, kernreg.WithMethod(m))
	}
	if req.Kernel != "" {
		opts = append(opts, kernreg.WithKernel(req.Kernel))
	}
	switch {
	case req.GridSize < 0:
		return nil, nil, badRequest("grid_size must be positive, got %d", req.GridSize)
	case req.GridSize > cfg.MaxGrid:
		return nil, nil, tooLarge("grid_size=%d exceeds the limit of %d", req.GridSize, cfg.MaxGrid)
	case req.GridSize > 0:
		opts = append(opts, kernreg.GridSize(req.GridSize))
	}
	if req.GridMin != 0 || req.GridMax != 0 {
		if math.IsNaN(req.GridMin) || math.IsInf(req.GridMin, 0) || math.IsNaN(req.GridMax) || math.IsInf(req.GridMax, 0) {
			return nil, nil, badRequest("grid range must be finite")
		}
		if !(req.GridMin > 0) || !(req.GridMax > req.GridMin) {
			return nil, nil, badRequest("grid range requires 0 < grid_min < grid_max, got [%g, %g]", req.GridMin, req.GridMax)
		}
		opts = append(opts, kernreg.GridRange(req.GridMin, req.GridMax))
	}
	if req.KeepScores {
		opts = append(opts, kernreg.KeepScores())
	}
	if req.Stable != nil {
		opts = append(opts, kernreg.Stable(*req.Stable))
	}
	if req.Aggregation != "" {
		if req.Method != "bagged" {
			return nil, nil, badRequest("aggregation requires \"method\": \"bagged\", got %q", req.Method)
		}
		if req.Aggregation != "mean" && req.Aggregation != "median" {
			return nil, nil, badRequest("unknown aggregation %q (want \"mean\" or \"median\")", req.Aggregation)
		}
		opts = append(opts, kernreg.Aggregation(req.Aggregation))
	}
	if req.Bags != nil || req.BagSize != nil || req.Seed != nil {
		if req.Method != "bagged" {
			return nil, nil, badRequest("bags, bag_size and seed require \"method\": \"bagged\", got %q", req.Method)
		}
		if req.Bags != nil {
			switch {
			case *req.Bags < 1:
				return nil, nil, badRequest("bags must be at least 1, got %d", *req.Bags)
			case *req.Bags > maxBags:
				return nil, nil, tooLarge("bags=%d exceeds the limit of %d", *req.Bags, maxBags)
			}
			opts = append(opts, kernreg.Bags(*req.Bags))
		}
		if req.BagSize != nil {
			switch {
			case *req.BagSize < 2:
				return nil, nil, badRequest("bag_size must be at least 2, got %d", *req.BagSize)
			case *req.BagSize > len(req.X):
				return nil, nil, badRequest("bag_size=%d exceeds n=%d", *req.BagSize, len(req.X))
			}
			opts = append(opts, kernreg.BagSize(*req.BagSize))
		}
		if req.Seed != nil {
			if *req.Seed < 0 {
				return nil, nil, badRequest("seed must be non-negative, got %d", *req.Seed)
			}
			opts = append(opts, kernreg.Seed(*req.Seed))
		}
	}
	return &req, opts, nil
}

// maxBags bounds the subsample count a single request can ask for —
// each bag is a full Θ(m²) sweep, so bags multiplies compute the same
// way n² does and needs its own admission limit.
const maxBags = 256

// decodeFitPredictRequest parses and validates a /v1/fit-predict body.
func decodeFitPredictRequest(body io.Reader, cfg Config) (*FitPredictRequest, *httpError) {
	var req FitPredictRequest
	if herr := decodeJSON(body, &req); herr != nil {
		return nil, herr
	}
	if herr := checkSample(req.X, req.Y, cfg); herr != nil {
		return nil, herr
	}
	if math.IsNaN(req.Bandwidth) || math.IsInf(req.Bandwidth, 0) || req.Bandwidth < 0 {
		return nil, badRequest("bandwidth must be a finite non-negative number")
	}
	if len(req.Points) == 0 {
		return nil, badRequest("points must be non-empty")
	}
	if len(req.Points) > cfg.MaxN {
		return nil, tooLarge("len(points)=%d exceeds the limit of %d", len(req.Points), cfg.MaxN)
	}
	for i, v := range req.Points {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, badRequest("points[%d] is not finite", i)
		}
	}
	return &req, nil
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/select", s.handleSelect)
	mux.HandleFunc("POST /v1/shard", s.handleShard)
	mux.HandleFunc("GET /v1/load", s.handleLoad)
	mux.HandleFunc("POST /v1/fit-predict", s.handleFitPredict)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/devices", s.handleDevices)
	if s.cfg.FaultInjection {
		mux.HandleFunc("POST /v1/devices/inject", s.handleInject)
	}
	return mux
}

// statusClientClosedRequest is nginx's conventional code for "client
// disconnected before the response"; the write is best-effort since the
// peer is gone, but the access log keeps the distinct status.
const statusClientClosedRequest = 499

// runJob admits fn into the pool and maps pool/selector errors to HTTP.
// It returns false if the response has already been written.
func (s *Server) runJob(w http.ResponseWriter, r *http.Request, method string, fn func(ctx context.Context) error) bool {
	s.metrics.IncRequests()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	start := time.Now()
	var jobErr error
	submitErr := s.submit(ctx, func(ctx context.Context) {
		jobErr = fn(ctx)
	})
	s.metrics.Latency[method].Observe(time.Since(start))
	switch {
	case errors.Is(submitErr, ErrQueueFull):
		http.Error(w, submitErr.Error(), http.StatusTooManyRequests)
		return false
	case errors.Is(submitErr, ErrDraining):
		http.Error(w, submitErr.Error(), http.StatusServiceUnavailable)
		return false
	}
	switch {
	case jobErr == nil:
		return true
	case errors.Is(jobErr, context.DeadlineExceeded):
		s.metrics.IncFailures()
		http.Error(w, "selection exceeded the compute deadline", http.StatusGatewayTimeout)
	case errors.Is(jobErr, context.Canceled):
		s.metrics.IncFailures()
		http.Error(w, "client closed request", statusClientClosedRequest)
	default:
		// Anything else the selector rejects at this point is an input
		// the decoder's structural checks cannot see (e.g. a degenerate
		// domain for the grid builder) — still the client's data.
		s.metrics.IncFailures()
		http.Error(w, jobErr.Error(), http.StatusBadRequest)
	}
	return false
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	req, opts, herr := decodeSelectRequest(r.Body, s.cfg)
	if herr != nil {
		s.metrics.IncRejected()
		http.Error(w, herr.msg, herr.status)
		return
	}
	if req.Method == "fleet" {
		s.handleFleetSelect(w, r, req)
		return
	}
	if req.Method == "mv" {
		s.handleMVSelect(w, r, req)
		return
	}
	start := time.Now()
	var sel kernreg.Selection
	ok := s.runJob(w, r, "select", func(ctx context.Context) error {
		var err error
		sel, err = kernreg.SelectBandwidthContext(ctx, req.X, req.Y, opts...)
		return err
	})
	if !ok {
		return
	}
	resp := SelectResponse{
		Bandwidth: sel.Bandwidth,
		CV:        finitePtr(sel.CV),
		Index:     sel.Index,
		Method:    sel.Method.String(),
		N:         len(req.X),
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	}
	if req.KeepScores {
		resp.Scores = finiteSlice(sel.Scores)
	}
	if req.Method == "bagged" {
		resp.BagCVVariance = finitePtr(sel.BagCVVariance)
	}
	writeJSON(w, resp)
}

func (s *Server) handleFitPredict(w http.ResponseWriter, r *http.Request) {
	req, herr := decodeFitPredictRequest(r.Body, s.cfg)
	if herr != nil {
		s.metrics.IncRejected()
		http.Error(w, herr.msg, herr.status)
		return
	}
	start := time.Now()
	var resp FitPredictResponse
	ok := s.runJob(w, r, "fit-predict", func(ctx context.Context) error {
		h := req.Bandwidth
		if h == 0 {
			sel, err := kernreg.SelectBandwidthContext(ctx, req.X, req.Y)
			if err != nil {
				return err
			}
			h = sel.Bandwidth
		}
		kernelName := req.Kernel
		if kernelName == "" {
			kernelName = "epanechnikov"
		}
		reg, err := kernreg.FitKernel(req.X, req.Y, h, kernelName)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		resp = FitPredictResponse{
			Bandwidth:   h,
			Predictions: finiteSlice(reg.PredictGrid(req.Points)),
		}
		return nil
	})
	if !ok {
		return
	}
	resp.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		http.Error(w, `{"status":"draining"}`, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.metrics.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// finitePtr maps a non-finite float to JSON null — encoding/json
// rejects NaN and ±Inf outright, and a degenerate sample can legally
// produce them (e.g. a CV score over an empty leave-one-out window).
func finitePtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func finiteSlice(vs []float64) []*float64 {
	out := make([]*float64, len(vs))
	for i, v := range vs {
		out[i] = finitePtr(v)
	}
	return out
}
