package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bandwidth"
	"repro/kernreg"
)

// Serve-layer battery for "method": "bagged" — the JSON surface, the
// exact rejection messages, and the concurrency/cancellation contract
// of the bagged selector running inside the worker pool.

func TestSelectBaggedMatchesDirectCall(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := testdata(600, 11)
	bags, bagSize, seed := 8, 150, int64(42)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{
		X: x, Y: y, Method: "bagged", GridSize: 32,
		Bags: &bags, BagSize: &bagSize, Seed: &seed,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SelectResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("bad response body %q: %v", body, err)
	}
	want, err := kernreg.SelectBandwidth(x, y,
		kernreg.WithMethod(kernreg.MethodBagged), kernreg.GridSize(32),
		kernreg.Bags(bags), kernreg.BagSize(bagSize), kernreg.Seed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if got.Bandwidth != want.Bandwidth {
		t.Fatalf("served bagged h=%g differs from direct call h=%g", got.Bandwidth, want.Bandwidth)
	}
	if got.Index != -1 {
		t.Fatalf("bagged selection reports grid index %d, want -1", got.Index)
	}
	if got.Method != "bagged" || got.N != 600 {
		t.Fatalf("unexpected metadata: %+v", got)
	}
}

// TestBaggedRequestErrorMessages locks the field names, values and
// statuses of every bagged-parameter rejection, checkSample-style:
// through the decoder directly, so a message edit breaks loudly here.
func TestBaggedRequestErrorMessages(t *testing.T) {
	cfg := Config{}.withDefaults()
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantMsg    string
	}{
		{"bags without bagged method", `{"x":[1,2,3],"y":[1,2,3],"method":"sorted","bags":4}`,
			http.StatusBadRequest, `bags, bag_size and seed require "method": "bagged", got "sorted"`},
		{"seed without any method", `{"x":[1,2,3],"y":[1,2,3],"seed":7}`,
			http.StatusBadRequest, `bags, bag_size and seed require "method": "bagged", got ""`},
		{"zero bags", `{"x":[1,2,3],"y":[1,2,3],"method":"bagged","bags":0}`,
			http.StatusBadRequest, "bags must be at least 1, got 0"},
		{"negative bags", `{"x":[1,2,3],"y":[1,2,3],"method":"bagged","bags":-3}`,
			http.StatusBadRequest, "bags must be at least 1, got -3"},
		{"too many bags", `{"x":[1,2,3],"y":[1,2,3],"method":"bagged","bags":257}`,
			http.StatusRequestEntityTooLarge, "bags=257 exceeds the limit of 256"},
		{"bag size one", `{"x":[1,2,3],"y":[1,2,3],"method":"bagged","bag_size":1}`,
			http.StatusBadRequest, "bag_size must be at least 2, got 1"},
		{"zero bag size", `{"x":[1,2,3],"y":[1,2,3],"method":"bagged","bag_size":0}`,
			http.StatusBadRequest, "bag_size must be at least 2, got 0"},
		{"bag size over n", `{"x":[1,2,3],"y":[1,2,3],"method":"bagged","bag_size":4}`,
			http.StatusBadRequest, "bag_size=4 exceeds n=3"},
		{"negative seed", `{"x":[1,2,3],"y":[1,2,3],"method":"bagged","seed":-1}`,
			http.StatusBadRequest, "seed must be non-negative, got -1"},
		{"valid bagged", `{"x":[1,2,3],"y":[1,2,3],"method":"bagged","bags":2,"bag_size":2,"seed":0}`, 0, ""},
		{"valid defaults", `{"x":[1,2,3],"y":[1,2,3],"method":"bagged"}`, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, herr := decodeSelectRequest(strings.NewReader(tc.body), cfg)
			if tc.wantStatus == 0 {
				if herr != nil {
					t.Fatalf("decode = %q, want nil", herr.msg)
				}
				return
			}
			if herr == nil {
				t.Fatalf("decode = nil, want status %d %q", tc.wantStatus, tc.wantMsg)
			}
			if herr.status != tc.wantStatus {
				t.Errorf("status = %d, want %d", herr.status, tc.wantStatus)
			}
			if herr.msg != tc.wantMsg {
				t.Errorf("msg = %q, want %q", herr.msg, tc.wantMsg)
			}
		})
	}
}

// TestConcurrentBaggedSelectionsWithCancellation extends the
// concurrent-clients battery to the bagged path: 32 clients run bagged
// selections with fixed seeds, half of them disconnect mid-flight.
// Completed responses must match the direct kernreg call bit for bit
// (no partial or crossed Result can), the server must keep serving,
// Drain must complete, and — the pool invariant the bagged workers add
// — every workspace Acquire must be balanced by a Release once the
// server is at rest, even on the cancelled paths.
func TestConcurrentBaggedSelectionsWithCancellation(t *testing.T) {
	h0, m0 := bandwidth.PoolStats()
	r0 := bandwidth.PoolReleases()
	if h0+m0 != r0 {
		t.Fatalf("pool not at rest before the battery: hits+misses=%d, releases=%d", h0+m0, r0)
	}

	srv := New(Config{Workers: 4, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 32
	type outcome struct {
		cancelled bool
		status    int
		got       SelectResponse
		want      kernreg.Selection
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Distinct datasets and seeds: a crossed response cannot match.
			x, y := testdata(400+c, int64(c))
			bags, bagSize, seed := 6, 100, int64(c)
			want, err := kernreg.SelectBandwidth(x, y,
				kernreg.WithMethod(kernreg.MethodBagged), kernreg.GridSize(24),
				kernreg.Bags(bags), kernreg.BagSize(bagSize), kernreg.Seed(seed))
			if err != nil {
				t.Error(err)
				return
			}
			b, err := json.Marshal(SelectRequest{
				X: x, Y: y, Method: "bagged", GridSize: 24,
				Bags: &bags, BagSize: &bagSize, Seed: &seed,
			})
			if err != nil {
				t.Error(err)
				return
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if c%2 == 1 {
				// Odd clients drop mid-flight, at staggered moments.
				go func() {
					time.Sleep(time.Duration(c) * time.Millisecond / 4)
					cancel()
				}()
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/select", bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				return
			}
			o := outcome{cancelled: c%2 == 1, want: want}
			resp, err := ts.Client().Do(req)
			if err != nil {
				// Only a cancelled client may fail to get a response.
				if !o.cancelled {
					t.Errorf("client %d: %v", c, err)
				}
				outcomes[c] = o
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			o.status = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(body, &o.got); err != nil {
					t.Errorf("client %d: bad body %q: %v", c, body, err)
				}
			}
			outcomes[c] = o
		}(c)
	}
	wg.Wait()

	completed := 0
	for c, o := range outcomes {
		if o.status == 0 && o.cancelled {
			continue // dropped before a response; nothing to check
		}
		if o.status != http.StatusOK {
			if o.cancelled {
				continue // a late cancel can also surface as a 499 body
			}
			t.Fatalf("client %d: status %d (lost response)", c, o.status)
		}
		completed++
		// Bit-identity with the direct call is the no-partial-result
		// witness: a Result assembled from a cancelled run cannot match.
		if o.got.Bandwidth != o.want.Bandwidth || o.got.Index != -1 {
			t.Fatalf("client %d: got (h=%g, idx=%d), want (h=%g, idx=-1)",
				c, o.got.Bandwidth, o.got.Index, o.want.Bandwidth)
		}
	}
	if completed < clients/2 {
		t.Fatalf("only %d of %d even clients completed", completed, clients/2)
	}

	// The server still serves after the churn.
	x, y := testdata(64, 99)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-battery request: status %d: %s", resp.StatusCode, body)
	}

	// Drain completes: no lost workers.
	ctx, cancelDrain := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelDrain()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain after cancellation battery: %v", err)
	}

	// At rest, every Acquire (hit or miss) has been balanced by a
	// Release — cancelled bag sweeps included.
	h1, m1 := bandwidth.PoolStats()
	r1 := bandwidth.PoolReleases()
	if (h1+m1)-(h0+m0) != r1-r0 {
		t.Fatalf("workspace pool leaked: %d acquires vs %d releases during the battery",
			(h1+m1)-(h0+m0), r1-r0)
	}
}
