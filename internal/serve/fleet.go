package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/gpu"
)

// Fleet surface: the service owns one simulated multi-GPU fleet
// (gpu.SimManager) shared by every "method": "fleet" selection, so
// injected faults hit requests that are genuinely in flight — the
// self-healing scheduler requeues the lost device's shards and the
// /metrics fleet block records the damage.
//
// Routes:
//
//	GET  /v1/devices        — per-device info + health + drained events
//	POST /v1/devices/inject — fault injection (only with FaultInjection)

// fleetMaxN caps observations for the fleet method: each functional
// fleet selection simulates every kernel thread on the host CPU, so it
// gets a far lower admission limit than the host-side selectors.
const fleetMaxN = 4096

// DeviceStatus is one device's row in GET /v1/devices.
type DeviceStatus struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	UUID     string `json:"uuid"`
	State    string `json:"state"`
	LastXID  int    `json:"last_xid,omitempty"`
	Launches int64  `json:"launches"`
	Faults   int    `json:"faults"`
}

// DeviceEvent is one health event in GET /v1/devices. Events are
// drained: each is reported exactly once; the cumulative count stays
// visible as device_health_events in /metrics.
type DeviceEvent struct {
	Device  int    `json:"device"`
	Kind    string `json:"kind"`
	XID     int    `json:"xid,omitempty"`
	Message string `json:"message"`
	Seq     int64  `json:"seq"`
}

// DevicesResponse is the body of GET /v1/devices.
type DevicesResponse struct {
	Devices []DeviceStatus `json:"devices"`
	Events  []DeviceEvent  `json:"events"`
}

// InjectRequest is the body of POST /v1/devices/inject.
type InjectRequest struct {
	Device int `json:"device"`
	// Kind is "xid", "off-bus" or "mem-pressure".
	Kind string `json:"kind"`
	// XID is the code for "xid" injections; 0 means 79 (uncorrectable
	// ECC, the classic fatal one).
	XID int `json:"xid,omitempty"`
	// Launch arms an "xid" injection to fire on the nth subsequent
	// kernel launch; 0 means the next one.
	Launch int64 `json:"launch,omitempty"`
	// WatermarkBytes is the "mem-pressure" threshold: allocations that
	// would push a device context above it fail.
	WatermarkBytes int64 `json:"watermark_bytes,omitempty"`
}

func (s *Server) handleDevices(w http.ResponseWriter, _ *http.Request) {
	resp := DevicesResponse{
		Devices: make([]DeviceStatus, 0, s.fleet.DeviceCount()),
		Events:  []DeviceEvent{},
	}
	for i := 0; i < s.fleet.DeviceCount(); i++ {
		info, err := s.fleet.DeviceInfo(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		h, err := s.fleet.DeviceHealth(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp.Devices = append(resp.Devices, DeviceStatus{
			Index:    info.Index,
			Name:     info.Name,
			UUID:     info.UUID,
			State:    h.State.String(),
			LastXID:  h.LastXID,
			Launches: h.Launches,
			Faults:   h.Faults,
		})
	}
	for _, ev := range s.fleet.CollectHealthEvents() {
		resp.Events = append(resp.Events, DeviceEvent{
			Device: ev.Device, Kind: ev.Kind, XID: ev.XID,
			Message: ev.Message, Seq: ev.Seq,
		})
	}
	writeJSON(w, resp)
}

func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	var req InjectRequest
	if herr := decodeJSON(r.Body, &req); herr != nil {
		s.metrics.IncRejected()
		http.Error(w, herr.msg, herr.status)
		return
	}
	var err error
	switch req.Kind {
	case "xid":
		code := req.XID
		if code == 0 {
			code = 79
		}
		launch := req.Launch
		if launch == 0 {
			launch = 1
		}
		err = s.fleet.InjectXID(req.Device, code, launch)
	case "off-bus":
		err = s.fleet.InjectFallOffBus(req.Device)
	case "mem-pressure":
		err = s.fleet.InjectMemPressure(req.Device, req.WatermarkBytes)
	default:
		s.metrics.IncRejected()
		http.Error(w, "kind must be \"xid\", \"off-bus\" or \"mem-pressure\"", http.StatusBadRequest)
		return
	}
	if err != nil {
		s.metrics.IncRejected()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{"status": "injected", "device": req.Device, "kind": req.Kind})
}

// handleFleetSelect runs a "method": "fleet" selection on the shared
// device fleet. Grid construction happens inside the pool job — a
// degenerate sample is the client's data and maps to 400 like every
// other selector rejection — but a fleet with no healthy devices left
// is the server's condition and maps to 503.
func (s *Server) handleFleetSelect(w http.ResponseWriter, r *http.Request, req *SelectRequest) {
	start := time.Now()
	var res core.MultiGPUResult
	var unavailable *httpError
	ok := s.runJob(w, r, "select", func(ctx context.Context) error {
		k := req.GridSize
		if k == 0 {
			k = defaultFleetGrid
		}
		var g bandwidth.Grid
		var err error
		if req.GridMin != 0 || req.GridMax != 0 {
			g, err = bandwidth.NewGrid(req.GridMin, req.GridMax, k)
		} else {
			g, err = bandwidth.DefaultGrid(req.X, k)
		}
		if err != nil {
			return err
		}
		opt := core.GPUOptions{KeepScores: req.KeepScores}
		if req.Stable != nil && !*req.Stable {
			opt.Uncompensated = true
		}
		res, err = core.SelectGPUFleetContext(ctx, req.X, req.Y, g, s.fleet, opt)
		if err != nil {
			if errors.Is(err, core.ErrNoHealthyDevices) {
				unavailable = &httpError{status: http.StatusServiceUnavailable, msg: err.Error()}
				return nil
			}
			return err
		}
		return nil
	})
	if !ok {
		return
	}
	if unavailable != nil {
		s.metrics.IncFailures()
		http.Error(w, unavailable.msg, unavailable.status)
		return
	}
	s.metrics.IncFleetSelections()
	s.metrics.AddFleetRequeues(int64(res.Requeues))
	resp := SelectResponse{
		Bandwidth: res.H,
		CV:        finitePtr(res.CV),
		Index:     res.Index,
		Method:    "fleet",
		N:         len(req.X),
		Requeues:  res.Requeues,
		Degraded:  res.Degraded,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	}
	if req.KeepScores {
		resp.Scores = finiteSlice(res.Scores)
	}
	writeJSON(w, resp)
}

// defaultFleetGrid matches the kernreg default grid size so "fleet"
// behaves like the other methods when grid_size is omitted.
const defaultFleetGrid = 50

// Fleet returns the server's shared device fleet (for tests and the
// kernregd smoke script's assertions).
func (s *Server) Fleet() *gpu.SimManager { return s.fleet }
