package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/gpu"
)

// Fleet-surface battery: the /v1/devices health endpoint, the fault
// injection hook, the "fleet" select method, and the /metrics fleet
// block the CI smoke test greps.

func getJSON(t *testing.T, client *http.Client, url string, dst any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if dst != nil {
		if err := json.Unmarshal(body, dst); err != nil {
			t.Fatalf("bad body %q: %v", body, err)
		}
	}
	return resp
}

func TestDevicesEndpoint(t *testing.T) {
	srv := New(Config{Workers: 1, FleetDevices: 3})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	var dr DevicesResponse
	if resp := getJSON(t, ts.Client(), ts.URL+"/v1/devices", &dr); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(dr.Devices) != 3 {
		t.Fatalf("devices = %d, want 3", len(dr.Devices))
	}
	for i, d := range dr.Devices {
		if d.Index != i || d.State != "healthy" || d.UUID == "" || d.Name == "" {
			t.Fatalf("device %d = %+v", i, d)
		}
	}
	if len(dr.Events) != 0 {
		t.Fatalf("fresh fleet reports events: %+v", dr.Events)
	}

	// Injection marks the device lost and records one event, which the
	// next GET drains exactly once.
	if err := srv.Fleet().InjectFallOffBus(1); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.Client(), ts.URL+"/v1/devices", &dr)
	if dr.Devices[1].State != "lost" {
		t.Fatalf("device 1 state = %q, want lost", dr.Devices[1].State)
	}
	if len(dr.Events) != 1 || dr.Events[0].Kind != "fell-off-bus" || dr.Events[0].Device != 1 {
		t.Fatalf("events = %+v", dr.Events)
	}
	getJSON(t, ts.Client(), ts.URL+"/v1/devices", &dr)
	if len(dr.Events) != 0 {
		t.Fatalf("events were not drained: %+v", dr.Events)
	}
}

// TestFleetSelectHealsAndReportsMetrics is the serve-layer slice of the
// chaos contract: a fault injected over HTTP, a fleet selection that
// self-heals around it with an answer identical to the direct healthy
// call, and /metrics reporting the health events and requeues.
func TestFleetSelectHealsAndReportsMetrics(t *testing.T) {
	srv := New(Config{Workers: 2, FleetDevices: 3, FaultInjection: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := testdata(160, 7)
	g, err := bandwidth.DefaultGrid(x, 24)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := gpu.NewSimManager(3, gpu.TeslaS10())
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SelectGPUFleetContext(context.Background(), x, y, g, hm, core.GPUOptions{})
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/devices/inject",
		InjectRequest{Device: 2, Kind: "off-bus"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inject status %d: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/select",
		SelectRequest{X: x, Y: y, Method: "fleet", GridSize: 24})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select status %d: %s", resp.StatusCode, body)
	}
	var got SelectResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("bad body %q: %v", body, err)
	}
	if got.Method != "fleet" || got.N != 160 {
		t.Fatalf("metadata: %+v", got)
	}
	if got.Bandwidth != want.H || got.Index != want.Index || got.CV == nil || *got.CV != want.CV {
		t.Fatalf("served fleet result %+v differs from direct healthy call %+v", got, want.Result)
	}
	if got.Requeues < 1 || got.Degraded != 1 {
		t.Fatalf("requeues=%d degraded=%d, want ≥1 and 1", got.Requeues, got.Degraded)
	}

	var metrics struct {
		Fleet struct {
			Selections        int64 `json:"selections"`
			Requeues          int64 `json:"requeues"`
			DeviceHealthEvent int64 `json:"device_health_events"`
		} `json:"fleet"`
	}
	getJSON(t, ts.Client(), ts.URL+"/metrics", &metrics)
	if metrics.Fleet.Selections != 1 || metrics.Fleet.Requeues < 1 || metrics.Fleet.DeviceHealthEvent < 1 {
		t.Fatalf("metrics fleet block = %+v", metrics.Fleet)
	}
}

func TestFleetSelectRejections(t *testing.T) {
	srv := New(Config{Workers: 1, FleetDevices: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := testdata(32, 3)
	bags := 4
	cases := []struct {
		name   string
		req    SelectRequest
		status int
		msg    string
	}{
		{
			name:   "fleet with bags",
			req:    SelectRequest{X: x, Y: y, Method: "fleet", Bags: &bags},
			status: http.StatusBadRequest,
			msg:    `bags, bag_size and seed require "method": "bagged", got "fleet"`,
		},
		{
			name:   "fleet over the n cap",
			req:    SelectRequest{X: make([]float64, fleetMaxN+1), Y: make([]float64, fleetMaxN+1), Method: "fleet"},
			status: http.StatusRequestEntityTooLarge,
			msg:    "n=4097 exceeds the fleet limit of 4096 observations",
		},
		{
			name:   "fleet with an unsupported kernel",
			req:    SelectRequest{X: x, Y: y, Method: "fleet", Kernel: "gaussian"},
			status: http.StatusBadRequest,
			msg:    `method "fleet" supports only the epanechnikov kernel, got "gaussian"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", tc.req)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if msg := strings.TrimSpace(string(body)); msg != tc.msg {
				t.Fatalf("message %q, want %q", msg, tc.msg)
			}
		})
	}
}

// TestInjectDisabledByDefault pins the security posture: without
// FaultInjection the hook is not registered at all — 404, not 403.
func TestInjectDisabledByDefault(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/devices/inject",
		InjectRequest{Device: 0, Kind: "off-bus"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("inject on a fleet without FaultInjection: status %d, want 404", resp.StatusCode)
	}
}

func TestInjectValidation(t *testing.T) {
	srv := New(Config{Workers: 1, FleetDevices: 2, FaultInjection: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/devices/inject",
		InjectRequest{Device: 0, Kind: "meteor-strike"})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "kind must be") {
		t.Fatalf("unknown kind: status %d body %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/devices/inject",
		InjectRequest{Device: 7, Kind: "off-bus"})
	if resp.StatusCode != http.StatusBadRequest || strings.TrimSpace(string(body)) != "gpu: no device 7 in a 2-device fleet" {
		t.Fatalf("unknown device: status %d body %s", resp.StatusCode, body)
	}
}

// TestFleetAllDevicesLostMaps503 pins the error mapping for the
// unrecoverable topology: no healthy devices is the server's condition,
// not the client's, so it must map to 503, not 400.
func TestFleetAllDevicesLostMaps503(t *testing.T) {
	srv := New(Config{Workers: 1, FleetDevices: 2, FaultInjection: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/devices/inject",
			InjectRequest{Device: i, Kind: "off-bus"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("inject %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	x, y := testdata(32, 3)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select",
		SelectRequest{X: x, Y: y, Method: "fleet"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "no healthy devices") {
		t.Fatalf("body %q does not name the fleet condition", body)
	}
}
