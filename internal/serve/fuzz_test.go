package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"testing"
)

// FuzzSelectRequestDecode fuzzes the /v1/select body decoder. The
// contract under test: any byte sequence either decodes to a fully
// validated request or fails with a 4xx httpError — never a panic and
// never a status outside [400, 500).
func FuzzSelectRequestDecode(f *testing.F) {
	cfg := Config{MaxN: 10_000, MaxGrid: 512}.withDefaults()

	// Well-formed seeds with the adversarial geometries the conformance
	// corpus exercises — duplicates, tight clusters, heavy tails —
	// generated locally: importing the corpus from an in-package test
	// would close an import cycle now that the conformance package
	// drives this server through the cluster coordinator. Small datasets
	// only: giant seed bodies slow mutation down without exercising any
	// extra decoder branch.
	rng := rand.New(rand.NewSource(1))
	for _, gen := range []func(i int) float64{
		func(i int) float64 { return float64(i) },                  // uniform spacing
		func(i int) float64 { return float64(i / 8) },              // heavy duplicates
		func(i int) float64 { return math.Exp(rng.Float64() * 6) }, // heavy tail
		func(i int) float64 { // two tight clusters
			return float64(i%2)*100 + rng.Float64()*1e-3
		},
	} {
		x := make([]float64, 64)
		y := make([]float64, 64)
		for i := range x {
			x[i] = gen(i)
			y[i] = math.Sin(x[i]) + rng.NormFloat64()
		}
		b, err := json.Marshal(SelectRequest{
			X: x, Y: y,
			GridSize: 16,
			GridMin:  0.1,
			GridMax:  5,
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// Malformed and boundary seeds steering the fuzzer at the decoder's
	// branch points.
	for _, s := range []string{
		``,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"x":[1,2],"y":[1,2]}`,
		`{"x":[1,2],"y":[1,2]}{"x":[3,4]}`,
		`{"x":[1,2],"y":[1]}`,
		`{"x":[1e308,2e308],"y":[1,2]}`,
		`{"x":[1,2],"y":[1,2],"method":"gpu","kernel":"uniform","grid_size":3}`,
		`{"x":[1,2],"y":[1,2],"grid_min":0.5,"grid_max":0.1}`,
		`{"x":[1,2],"y":[1,2],"grid_size":-1}`,
		`{"x":[1,2],"y":[1,2],"keep_scores":true,"unknown":0}`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		req, _, herr := decodeSelectRequest(bytes.NewReader(data), cfg)
		if herr != nil {
			if herr.status < 400 || herr.status >= 500 {
				t.Fatalf("decode error %q carries status %d, want 4xx", herr.msg, herr.status)
			}
			if herr.msg == "" {
				t.Fatal("decode error with empty message")
			}
			return
		}
		// A successful decode must have enforced every invariant the
		// handler and selector rely on.
		if req == nil {
			t.Fatal("nil request with nil error")
		}
		if len(req.X) != len(req.Y) {
			t.Fatalf("accepted length mismatch: %d vs %d", len(req.X), len(req.Y))
		}
		if len(req.X) < 2 || len(req.X) > cfg.MaxN {
			t.Fatalf("accepted n=%d outside [2, %d]", len(req.X), cfg.MaxN)
		}
		for _, v := range req.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("accepted non-finite x")
			}
		}
		for _, v := range req.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("accepted non-finite y")
			}
		}
		if req.GridSize < 0 || req.GridSize > cfg.MaxGrid {
			t.Fatalf("accepted grid_size=%d outside [0, %d]", req.GridSize, cfg.MaxGrid)
		}
		if req.GridMin != 0 || req.GridMax != 0 {
			if !(req.GridMin > 0) || !(req.GridMax > req.GridMin) {
				t.Fatalf("accepted bad grid range [%g, %g]", req.GridMin, req.GridMax)
			}
		}
		if req.Method != "" {
			valid := map[string]bool{
				"sorted": true, "sorted-parallel": true, "sorted-f32": true,
				"naive": true, "numerical": true, "gpu": true, "gpu-tiled": true,
				"twopointer": true, "twopointer-parallel": true, "twopointer-f32": true,
			}
			if !valid[req.Method] {
				t.Fatalf("accepted unknown method %q", req.Method)
			}
		}
	})
}

// FuzzSelectEndpoint drives the same fuzz corpus through the full HTTP
// handler against a live pool: whatever the body, the server must
// answer (no panic, no hang) and malformed input must never surface as
// a 5xx.
func FuzzSelectEndpoint(f *testing.F) {
	f.Add([]byte(`{"x":[0,1,2,3],"y":[1,0,1,0],"grid_size":4}`))
	f.Add([]byte(`{"x":"p","y":[]}`))
	f.Add([]byte(`{`))

	srv := New(Config{Workers: 2, MaxN: 512, MaxGrid: 64})
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := http.NewRequest(http.MethodPost, "/v1/select", bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		rec := &statusRecorder{header: http.Header{}}
		handler.ServeHTTP(rec, req)
		if rec.status >= 500 {
			t.Fatalf("body %q produced status %d", data, rec.status)
		}
	})
}

// statusRecorder is a minimal ResponseWriter capturing only the status
// (httptest.ResponseRecorder allocates bodies the fuzzer doesn't need).
type statusRecorder struct {
	header http.Header
	status int
}

func (r *statusRecorder) Header() http.Header { return r.header }
func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return len(b), nil
}
func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}
