package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/bandwidth"
)

// Metrics are per-Server expvar counters. They are deliberately *not*
// published to the global expvar registry: expvar.Publish panics on
// duplicate names, and the test battery creates many servers per
// process. /metrics renders this struct directly instead.
type Metrics struct {
	// Requests counts admitted API calls per endpoint outcome.
	Requests expvar.Int
	// Shed counts requests rejected by admission control (429).
	Shed expvar.Int
	// Rejected counts malformed or over-limit requests (4xx before the
	// pool is involved).
	Rejected expvar.Int
	// Failures counts requests that reached a selector and errored,
	// including timeouts.
	Failures expvar.Int
	// FleetSelections counts completed "method": "fleet" selections;
	// FleetRequeues sums the shard requeues their self-healing runs
	// performed (zero while the fleet is healthy).
	FleetSelections expvar.Int
	FleetRequeues   expvar.Int

	// Latency histograms per method ("select", "fit-predict"), covering
	// queue wait plus compute.
	Latency map[string]*Histogram

	queueDepth func() int
	// fleetEvents reports the fleet's cumulative health-event count
	// (gpu.SimManager.TotalHealthEvents — drains by /v1/devices do not
	// reduce it).
	fleetEvents func() int64
}

func newMetrics() *Metrics {
	return &Metrics{
		Latency: map[string]*Histogram{
			"select":      NewHistogram(),
			"shard":       NewHistogram(),
			"fit-predict": NewHistogram(),
		},
	}
}

// Counter mutation goes through the helpers below rather than the
// expvar fields directly, so every site that can bump a counter is
// enumerable from this type (the atomicexpvar analyzer enforces it).

// IncRequests counts one admitted API call.
func (m *Metrics) IncRequests() { m.Requests.Add(1) }

// IncShed counts one request rejected by admission control.
func (m *Metrics) IncShed() { m.Shed.Add(1) }

// IncRejected counts one malformed or over-limit request.
func (m *Metrics) IncRejected() { m.Rejected.Add(1) }

// IncFailures counts one request that reached a selector and errored.
func (m *Metrics) IncFailures() { m.Failures.Add(1) }

// IncFleetSelections counts one completed fleet selection.
func (m *Metrics) IncFleetSelections() { m.FleetSelections.Add(1) }

// AddFleetRequeues adds the shard requeues one self-healing run
// performed.
func (m *Metrics) AddFleetRequeues(n int64) { m.FleetRequeues.Add(n) }

// QueueDepth reports the number of admitted requests waiting for a
// worker at this instant.
func (m *Metrics) QueueDepth() int {
	if m.queueDepth == nil {
		return 0
	}
	return m.queueDepth()
}

// WriteJSON renders the metrics as one JSON object (the /metrics body).
func (m *Metrics) WriteJSON(w io.Writer) error {
	out := map[string]any{
		"requests":    m.Requests.Value(),
		"shed":        m.Shed.Value(),
		"rejected":    m.Rejected.Value(),
		"failures":    m.Failures.Value(),
		"queue_depth": m.QueueDepth(),
	}
	lat := map[string]json.RawMessage{}
	for name, h := range m.Latency {
		lat[name] = json.RawMessage(h.String())
	}
	out["latency"] = lat
	// Allocation and GC observability: the pooled two-pointer path exists
	// to keep steady-state selections off the heap, so /metrics exposes
	// both the GC pressure (process-wide) and the workspace pool's
	// hit/miss split to verify the pooling is actually working in
	// production, not just in the benchmark.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out["gc"] = map[string]any{
		"num_gc":         ms.NumGC,
		"pause_total_ns": ms.PauseTotalNs,
		"heap_alloc":     ms.HeapAlloc,
		"total_alloc":    ms.TotalAlloc,
	}
	// releases lets an operator spot a workspace leak: at rest,
	// hits+misses == releases; a widening gap means some selection path
	// acquired without releasing.
	hits, misses := bandwidth.PoolStats()
	out["workspace_pool"] = map[string]any{
		"hits":     hits,
		"misses":   misses,
		"releases": bandwidth.PoolReleases(),
	}
	// Fleet health: device_health_events counts every fault the fleet
	// manager recorded since start; requeues counts shard reruns the
	// self-healing scheduler performed. The chaos smoke test asserts
	// both go positive after an injection under live traffic.
	var events int64
	if m.fleetEvents != nil {
		events = m.fleetEvents()
	}
	out["fleet"] = map[string]any{
		"selections":           m.FleetSelections.Value(),
		"requeues":             m.FleetRequeues.Value(),
		"device_health_events": events,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// latencyBounds are the histogram's upper bucket bounds. Selections
// span five orders of magnitude (a 64-point toy request vs a 100k-point
// naive search), so the buckets are roughly logarithmic.
var latencyBounds = []time.Duration{
	1 * time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2500 * time.Millisecond,
	10 * time.Second,
	30 * time.Second,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe. It implements expvar.Var.
type Histogram struct {
	counts []atomic.Int64 // len(latencyBounds)+1; last bucket is +Inf
	sumNs  atomic.Int64
	n      atomic.Int64
}

// NewHistogram returns an empty histogram over latencyBounds.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(latencyBounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// String renders the histogram as JSON; this satisfies expvar.Var.
func (h *Histogram) String() string {
	buckets := map[string]int64{}
	for i := range h.counts {
		label := "+Inf"
		if i < len(latencyBounds) {
			label = latencyBounds[i].String()
		}
		if c := h.counts[i].Load(); c > 0 {
			buckets["<="+label] = c
		}
	}
	out := map[string]any{
		"count":   h.n.Load(),
		"sum_ms":  float64(h.sumNs.Load()) / float64(time.Millisecond),
		"buckets": buckets,
	}
	b, err := json.Marshal(out)
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b)
}
