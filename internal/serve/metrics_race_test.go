package serve

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/bandwidth"
)

// TestMetricsWriteJSONConcurrent renders /metrics concurrently with
// counter updates, histogram observations, and pooled selections that
// advance the workspace_pool counters. Every render must be valid JSON
// with a complete workspace_pool object, and sequential reads of the
// pool counters must never go backwards — the atomicity audit for the
// /metrics path, meaningful under -race.
func TestMetricsWriteJSONConcurrent(t *testing.T) {
	m := newMetrics()
	const (
		writers = 4
		renders = 50
		perG    = 100
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Requests.Add(1)
				m.Latency["select"].Observe(time.Duration(i%7) * time.Millisecond)
				// Drive the pool counters the rendered workspace_pool
				// object reads from.
				ws := bandwidth.AcquireWorkspace(128, 16)
				ws.Release()
			}
		}(g)
	}

	var lastHits, lastMisses float64
	for i := 0; i < renders; i++ {
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON during concurrent updates: %v", err)
		}
		var out struct {
			WorkspacePool struct {
				Hits   float64 `json:"hits"`
				Misses float64 `json:"misses"`
			} `json:"workspace_pool"`
			Latency map[string]json.RawMessage `json:"latency"`
		}
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("render %d is not valid JSON: %v\n%s", i, err, buf.String())
		}
		wp := out.WorkspacePool
		if wp.Hits < lastHits || wp.Misses < lastMisses {
			t.Fatalf("workspace_pool went backwards: hits %v→%v, misses %v→%v",
				lastHits, wp.Hits, lastMisses, wp.Misses)
		}
		lastHits, lastMisses = wp.Hits, wp.Misses
		if _, ok := out.Latency["select"]; !ok {
			t.Fatalf("render %d is missing the select latency histogram", i)
		}
	}
	wg.Wait()

	if got := m.Latency["select"].Count(); got != int64(writers*perG) {
		t.Errorf("histogram count = %d, want %d (lost observations)", got, writers*perG)
	}
	if got := m.Requests.Value(); got != int64(writers*perG) {
		t.Errorf("requests counter = %d, want %d", got, writers*perG)
	}
}
