package serve

import (
	"context"
	"math"
	"net/http"
	"time"

	"repro/kernreg"
)

// Multivariate surface: "method": "mv" selects a bandwidth vector for a
// regression of y on the rows of x_matrix with a product Epanechnikov
// kernel — mesh=true runs the fast-sum-updating mesh search over the
// full Cartesian grid, mesh=false coordinate descent. The method has
// its own admission limits: the objective is Θ(n·k·d) per sweep but the
// mesh multiplies sweeps by Π k_d, so the cell count is capped
// independently of grid_size.

const (
	// mvMaxN caps observations for the mv method, matching the fleet
	// limit — every sweep is host CPU work.
	mvMaxN = 4096
	// mvMaxDim caps the regressor dimensionality; beyond a handful of
	// dimensions the product-kernel CV surface is all boundary and the
	// paper's grid approach stops being meaningful.
	mvMaxDim = 8
	// mvMaxMeshCells caps the Cartesian product a single mesh request
	// can ask for (k^d grows without bound long before grid_size hits
	// MaxGrid).
	mvMaxMeshCells = 1 << 14
	// defaultMVGrid matches kernreg.SelectBandwidthMV's default per-
	// dimension candidate count.
	defaultMVGrid = 20
)

// checkMVSelect validates a "method": "mv" request. All failures are
// 4xx by construction.
func checkMVSelect(req *SelectRequest, cfg Config) *httpError {
	if len(req.X) != 0 {
		return badRequest("method \"mv\" takes x_matrix, not x")
	}
	if req.Kernel != "" && req.Kernel != "epanechnikov" {
		return badRequest("method \"mv\" supports only the epanechnikov kernel, got %q", req.Kernel)
	}
	if req.GridMin != 0 || req.GridMax != 0 {
		return badRequest("grid_min and grid_max are not supported for method \"mv\" (grids are built per dimension)")
	}
	if req.KeepScores {
		return badRequest("keep_scores is not supported for method \"mv\"")
	}
	if req.Stable != nil {
		return badRequest("stable is not supported for method \"mv\"")
	}
	if req.Bags != nil || req.BagSize != nil || req.Seed != nil {
		return badRequest("bags, bag_size and seed require \"method\": \"bagged\", got %q", req.Method)
	}
	if req.Aggregation != "" {
		return badRequest("aggregation requires \"method\": \"bagged\", got %q", req.Method)
	}
	n := len(req.XMatrix)
	if n != len(req.Y) {
		return badRequest("x_matrix has %d rows, y has %d", n, len(req.Y))
	}
	if n < 2 {
		return badRequest("need at least 2 observations, have %d", n)
	}
	if n > mvMaxN {
		return tooLarge("n=%d exceeds the mv limit of %d observations", n, mvMaxN)
	}
	d := len(req.XMatrix[0])
	if d == 0 {
		return badRequest("x_matrix rows must have at least 1 coordinate")
	}
	if d > mvMaxDim {
		return tooLarge("dimension %d exceeds the mv limit of %d", d, mvMaxDim)
	}
	for i, row := range req.XMatrix {
		if len(row) != d {
			return badRequest("x_matrix row %d has %d coordinates, row 0 has %d", i, len(row), d)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return badRequest("x_matrix[%d][%d] is not finite", i, j)
			}
		}
	}
	for i, v := range req.Y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return badRequest("y[%d] is not finite", i)
		}
	}
	k := req.GridSize
	switch {
	case k < 0:
		return badRequest("grid_size must be positive, got %d", k)
	case k > cfg.MaxGrid:
		return tooLarge("grid_size=%d exceeds the limit of %d", k, cfg.MaxGrid)
	case k == 0:
		k = defaultMVGrid
	}
	if req.Mesh {
		cells := 1
		for j := 0; j < d; j++ {
			if cells > mvMaxMeshCells/k {
				return tooLarge("mesh of %d^%d cells exceeds the limit of %d", k, d, mvMaxMeshCells)
			}
			cells *= k
		}
	}
	return nil
}

// handleMVSelect runs a "method": "mv" selection. Grid construction
// happens inside the pool job — a degenerate sample (zero-domain
// dimension) is the client's data and maps to 400 like every other
// selector rejection.
func (s *Server) handleMVSelect(w http.ResponseWriter, r *http.Request, req *SelectRequest) {
	start := time.Now()
	var sel kernreg.MVSelection
	ok := s.runJob(w, r, "select", func(ctx context.Context) error {
		var err error
		sel, err = kernreg.SelectBandwidthMVContext(ctx, req.XMatrix, req.Y, req.GridSize, req.Mesh)
		return err
	})
	if !ok {
		return
	}
	writeJSON(w, SelectResponse{
		CV:         finitePtr(sel.CV),
		Index:      -1,
		Method:     "mv",
		N:          len(req.XMatrix),
		Bandwidths: sel.Bandwidths,
		Evals:      sel.Evals,
		Sweeps:     sel.Sweeps,
		ElapsedMs:  float64(time.Since(start)) / float64(time.Millisecond),
	})
}
