package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/kernreg"
)

// mvTestMatrix builds a deterministic bivariate sample shaped like the
// univariate testdata helper.
func mvTestMatrix(n int, seed int64) ([][]float64, []float64) {
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n)
		u := math.Mod(float64(i)*0.6180339887+float64(seed)*0.1, 1)
		x[i] = []float64{t, u}
		y[i] = t + 2*u*u + 0.3*math.Sin(float64(seed)*12.9898+float64(i)*78.233)
	}
	return x, y
}

func TestMVSelectEndpointMatchesDirectCall(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := mvTestMatrix(96, 3)
	for _, mesh := range []bool{true, false} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select",
			SelectRequest{Method: "mv", XMatrix: x, Y: y, GridSize: 8, Mesh: mesh})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mesh=%v status %d: %s", mesh, resp.StatusCode, body)
		}
		var got SelectResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("bad response body %q: %v", body, err)
		}
		want, err := kernreg.SelectBandwidthMV(x, y, 8, mesh)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Bandwidths) != 2 || got.Bandwidths[0] != want.Bandwidths[0] || got.Bandwidths[1] != want.Bandwidths[1] {
			t.Fatalf("mesh=%v served bandwidths %v differ from direct %v", mesh, got.Bandwidths, want.Bandwidths)
		}
		if got.CV == nil || *got.CV != want.CV {
			t.Fatalf("mesh=%v served CV %v differs from direct %g", mesh, got.CV, want.CV)
		}
		if got.Method != "mv" || got.Index != -1 || got.N != len(x) {
			t.Fatalf("mesh=%v response metadata: %+v", mesh, got)
		}
		if got.Evals != want.Evals || got.Sweeps != want.Sweeps {
			t.Fatalf("mesh=%v evals/sweeps (%d, %d) differ from direct (%d, %d)",
				mesh, got.Evals, got.Sweeps, want.Evals, want.Sweeps)
		}
		if mesh && got.Evals != 64 {
			t.Fatalf("mesh evals = %d, want 8²", got.Evals)
		}
	}
}

// TestMVSelectRejections pins the exact 4xx status and message for every
// invalid mv request shape.
func TestMVSelectRejections(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := mvTestMatrix(16, 5)
	bigX := make([][]float64, mvMaxN+1)
	bigY := make([]float64, mvMaxN+1)
	for i := range bigX {
		bigX[i] = []float64{float64(i), float64(i)}
		bigY[i] = float64(i)
	}
	wideRow := make([]float64, mvMaxDim+1)
	boolPtr := func(b bool) *bool { return &b }

	cases := []struct {
		name   string
		req    SelectRequest
		status int
		msg    string
	}{
		{"x-matrix-without-mv", SelectRequest{X: []float64{1, 2}, Y: y[:2], XMatrix: x},
			http.StatusBadRequest, `x_matrix requires "method": "mv", got ""`},
		{"mesh-without-mv", SelectRequest{X: []float64{1, 2}, Y: []float64{1, 2}, Mesh: true},
			http.StatusBadRequest, `mesh requires "method": "mv", got ""`},
		{"x-with-mv", SelectRequest{Method: "mv", X: []float64{1, 2}, XMatrix: x, Y: y},
			http.StatusBadRequest, `method "mv" takes x_matrix, not x`},
		{"wrong-kernel", SelectRequest{Method: "mv", XMatrix: x, Y: y, Kernel: "gaussian"},
			http.StatusBadRequest, `method "mv" supports only the epanechnikov kernel, got "gaussian"`},
		{"grid-range", SelectRequest{Method: "mv", XMatrix: x, Y: y, GridMin: 0.1, GridMax: 1},
			http.StatusBadRequest, `grid_min and grid_max are not supported for method "mv" (grids are built per dimension)`},
		{"keep-scores", SelectRequest{Method: "mv", XMatrix: x, Y: y, KeepScores: true},
			http.StatusBadRequest, `keep_scores is not supported for method "mv"`},
		{"stable", SelectRequest{Method: "mv", XMatrix: x, Y: y, Stable: boolPtr(false)},
			http.StatusBadRequest, `stable is not supported for method "mv"`},
		{"row-count-mismatch", SelectRequest{Method: "mv", XMatrix: x, Y: y[:8]},
			http.StatusBadRequest, `x_matrix has 16 rows, y has 8`},
		{"too-few-rows", SelectRequest{Method: "mv", XMatrix: x[:1], Y: y[:1]},
			http.StatusBadRequest, `need at least 2 observations, have 1`},
		{"too-many-rows", SelectRequest{Method: "mv", XMatrix: bigX, Y: bigY},
			http.StatusRequestEntityTooLarge, `n=4097 exceeds the mv limit of 4096 observations`},
		{"empty-row", SelectRequest{Method: "mv", XMatrix: [][]float64{{}, {}}, Y: []float64{1, 2}},
			http.StatusBadRequest, `x_matrix rows must have at least 1 coordinate`},
		{"too-wide", SelectRequest{Method: "mv", XMatrix: [][]float64{wideRow, wideRow}, Y: []float64{1, 2}},
			http.StatusRequestEntityTooLarge, `dimension 9 exceeds the mv limit of 8`},
		{"ragged-rows", SelectRequest{Method: "mv", XMatrix: [][]float64{{1, 2}, {3}}, Y: []float64{1, 2}},
			http.StatusBadRequest, `x_matrix row 1 has 1 coordinates, row 0 has 2`},
		{"negative-grid-size", SelectRequest{Method: "mv", XMatrix: x, Y: y, GridSize: -1},
			http.StatusBadRequest, `grid_size must be positive, got -1`},
		{"oversized-grid", SelectRequest{Method: "mv", XMatrix: x, Y: y, GridSize: 5000},
			http.StatusRequestEntityTooLarge, `grid_size=5000 exceeds the limit of 2048`},
		{"oversized-mesh", SelectRequest{Method: "mv", XMatrix: [][]float64{{1, 1, 1}, {2, 2, 2}}, Y: []float64{1, 2}, GridSize: 64, Mesh: true},
			http.StatusRequestEntityTooLarge, `mesh of 64^3 cells exceeds the limit of 16384`},
		{"bags-with-mv", SelectRequest{Method: "mv", XMatrix: x, Y: y, Bags: intPtr(4)},
			http.StatusBadRequest, `bags, bag_size and seed require "method": "bagged", got "mv"`},
		{"zero-domain-dimension", SelectRequest{Method: "mv", XMatrix: [][]float64{{1, 5}, {2, 5}, {3, 5}}, Y: []float64{1, 2, 3}},
			http.StatusBadRequest, `mvreg: dimension 1 has zero domain`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", tc.req)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			if got := strings.TrimSpace(string(body)); got != tc.msg {
				t.Errorf("message %q, want %q", got, tc.msg)
			}
		})
	}
}

func intPtr(v int) *int { return &v }

// Non-finite coordinates cannot ride through json.Marshal (JSON has no
// Inf/NaN literals), so the finiteness rejections are exercised with a
// raw out-of-range body; Go's decoder rejects it before checkMVSelect,
// and either way the client sees a 400.
func TestMVSelectNonFiniteViaRawBody(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	body := `{"method":"mv","x_matrix":[[1,2],[3,1e999]],"y":[1,2]}`
	resp, err := ts.Client().Post(ts.URL+"/v1/select", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}
