// Package serve is the concurrency layer of the kernregd bandwidth
// selection service: a bounded worker pool with admission control,
// per-request deadline propagation into the selector hot loops, and a
// graceful drain for shutdown.
//
// The design maps the paper's batch programs onto a long-running
// service without letting concurrency distort the numerics: every
// request runs one of the existing selectors unchanged (the pool only
// decides *when* it runs), cancellation reaches the selector via the
// context plumbing of kernreg.SelectBandwidthContext, and admission
// control keeps the queue from growing past a configured depth —
// excess load is shed with 429 rather than absorbed as unbounded
// latency.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/gpu"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of selector goroutines; 0 means GOMAXPROCS.
	// Each in-flight selection occupies one worker for its duration, so
	// this bounds compute concurrency.
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// beyond those already running; 0 means 2×Workers. A full queue
	// sheds new requests with ErrQueueFull (HTTP 429).
	QueueDepth int
	// Timeout caps each request's compute time; 0 means 30s. The
	// deadline propagates into the selector hot loop, so an expired
	// request stops computing rather than running to completion.
	Timeout time.Duration
	// MaxN caps the observations per request; 0 means 100,000.
	MaxN int
	// MaxGrid caps the grid size per request; 0 means 2,048 (the
	// simulated device's constant-memory limit).
	MaxGrid int
	// FleetDevices sizes the simulated multi-GPU fleet serving
	// "method": "fleet" selections; 0 means 2 (the paper machine's two
	// Tesla S10s).
	FleetDevices int
	// FaultInjection registers POST /v1/devices/inject, the debug hook
	// the chaos smoke test uses to kill a device under live traffic.
	// Off by default: injection is an operator weapon, not a client API.
	FaultInjection bool
	// WorkerLabel names this replica in shard responses and GET
	// /v1/load, so a coordinator's logs and metrics can attribute work
	// to a specific worker. Empty is fine for single-node deployments.
	WorkerLabel string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxN <= 0 {
		c.MaxN = 100_000
	}
	if c.MaxGrid <= 0 {
		c.MaxGrid = 2048
	}
	if c.FleetDevices <= 0 {
		c.FleetDevices = 2
	}
	return c
}

var (
	// ErrQueueFull is returned when admission control sheds a request
	// because the wait queue is at capacity. Maps to HTTP 429.
	ErrQueueFull = errors.New("serve: queue full, request shed")
	// ErrDraining is returned for requests arriving after Drain began.
	// Maps to HTTP 503.
	ErrDraining = errors.New("serve: server draining")
)

// job is one admitted unit of work. The worker runs fn with the
// request's context and closes done; the submitting handler blocks on
// done, so responses are written on the handler goroutine only.
type job struct {
	ctx  context.Context
	fn   func(context.Context)
	done chan struct{}
}

// Server is the worker pool plus its HTTP API.
type Server struct {
	cfg     Config
	metrics *Metrics
	mux     *http.ServeMux

	// fleet is the shared simulated multi-GPU fleet behind "method":
	// "fleet", GET /v1/devices, and the injection hook. SimManager is
	// internally locked, so concurrent selections and health queries
	// need no coordination here.
	fleet *gpu.SimManager

	// mu guards draining and orders submits against the close(jobs) in
	// Drain: submitters hold the read lock across the draining check
	// and the channel send, so a send can never race the close.
	mu       sync.RWMutex
	draining bool
	jobs     chan *job
	wg       sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	fleet, err := gpu.NewSimManager(cfg.FleetDevices, gpu.TeslaS10())
	if err != nil {
		// withDefaults guarantees FleetDevices ≥ 1 and the Tesla S10
		// profile validates, so this is unreachable without a
		// programming error.
		panic(fmt.Sprintf("serve: building device fleet: %v", err))
	}
	s := &Server{
		cfg:     cfg,
		jobs:    make(chan *job, cfg.QueueDepth),
		metrics: newMetrics(),
		fleet:   fleet,
	}
	s.metrics.queueDepth = func() int { return len(s.jobs) }
	s.metrics.fleetEvents = fleet.TotalHealthEvents
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker() //kernvet:ignore goleak -- server-scoped pool: workers drain s.jobs until close and are joined by Drain via s.wg, not by New
	}
	s.mux = s.routes()
	return s
}

// Handler returns the HTTP API (see api.go for the routes).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters for tests and /metrics.
func (s *Server) Metrics() *Metrics { return s.metrics }

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		// fn handles a cancelled ctx itself (the selector's entry check
		// returns immediately), so a request whose client vanished while
		// queued costs the worker one ctx poll, not a full selection.
		j.fn(j.ctx)
		close(j.done)
	}
}

// submit admits fn into the pool and blocks until the worker has run it
// (or drained past it). It never runs fn on the calling goroutine.
func (s *Server) submit(ctx context.Context, fn func(context.Context)) error {
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{})}
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		return ErrDraining
	}
	select {
	case s.jobs <- j:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.metrics.IncShed()
		return ErrQueueFull
	}
	<-j.done
	return nil
}

// Drain stops admission, lets the workers finish every queued and
// in-flight job, and returns when the pool is idle or ctx expires.
// Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.jobs)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun (used by /healthz).
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}
