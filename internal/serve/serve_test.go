package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/kernreg"
)

// testdata generates a deterministic sample shaped like the paper's
// simulation (sinusoid plus deterministic pseudo-noise), parameterised
// by a seed so concurrent clients can hold distinct datasets.
func testdata(n int, seed int64) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n)
		// A cheap deterministic scramble; no math/rand so the data is
		// reproducible from (n, seed) alone.
		noise := math.Sin(float64(seed)*12.9898 + float64(i)*78.233)
		x[i] = 10 * t
		y[i] = math.Sin(x[i]) + 0.3*noise
	}
	return x, y
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestSelectEndpointMatchesDirectCall(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := testdata(128, 1)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y, GridSize: 32})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SelectResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("bad response body %q: %v", body, err)
	}
	want, err := kernreg.SelectBandwidth(x, y, kernreg.GridSize(32))
	if err != nil {
		t.Fatal(err)
	}
	if got.Bandwidth != want.Bandwidth || got.Index != want.Index {
		t.Fatalf("served selection (h=%g, idx=%d) differs from direct call (h=%g, idx=%d)",
			got.Bandwidth, got.Index, want.Bandwidth, want.Index)
	}
	if got.CV == nil || *got.CV != want.CV {
		t.Fatalf("served CV %v differs from direct %g", got.CV, want.CV)
	}
	if got.Method != "sorted" || got.N != 128 {
		t.Fatalf("unexpected metadata: %+v", got)
	}
}

func TestFitPredictEndpoint(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := testdata(100, 7)
	points := []float64{0.5, 5, 9.5, 1e6} // 1e6 is far outside the data: null prediction
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/fit-predict",
		FitPredictRequest{X: x, Y: y, Bandwidth: 1.5, Points: points})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got FitPredictResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Bandwidth != 1.5 || len(got.Predictions) != len(points) {
		t.Fatalf("unexpected response: %+v", got)
	}
	reg, err := kernreg.Fit(x, y, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points[:3] {
		want, ok := reg.Predict(p)
		if !ok {
			t.Fatalf("direct predict at %g unexpectedly undefined", p)
		}
		if got.Predictions[i] == nil || *got.Predictions[i] != want {
			t.Fatalf("prediction[%d] = %v, want %g", i, got.Predictions[i], want)
		}
	}
	if got.Predictions[3] != nil {
		t.Fatalf("prediction far outside the data should be null, got %v", *got.Predictions[3])
	}
}

func TestCheckSampleErrorMessages(t *testing.T) {
	// Locks the field name, index, and status of every checkSample
	// rejection — in particular that the y-loop reports "y", not "x",
	// and the offending index within y.
	cfg := Config{MaxN: 8}
	nan := math.NaN()
	inf := math.Inf(1)
	big := make([]float64, 9)
	cases := []struct {
		name       string
		x, y       []float64
		wantStatus int
		wantMsg    string
	}{
		{"length mismatch", []float64{1, 2, 3}, []float64{1, 2}, http.StatusBadRequest, "x has 3 observations, y has 2"},
		{"too few", []float64{1}, []float64{1}, http.StatusBadRequest, "need at least 2 observations, have 1"},
		{"over limit", big, big, http.StatusRequestEntityTooLarge, "n=9 exceeds the limit of 8 observations"},
		{"nan in x", []float64{1, nan}, []float64{1, 2}, http.StatusBadRequest, "x[1] is not finite"},
		{"inf in x", []float64{inf, 2}, []float64{1, 2}, http.StatusBadRequest, "x[0] is not finite"},
		{"nan in y", []float64{1, 2}, []float64{1, nan}, http.StatusBadRequest, "y[1] is not finite"},
		{"neg inf in y", []float64{1, 2, 3}, []float64{1, 2, -inf}, http.StatusBadRequest, "y[2] is not finite"},
		{"bad x reported before bad y", []float64{nan, 2}, []float64{1, nan}, http.StatusBadRequest, "x[0] is not finite"},
		{"valid", []float64{1, 2, 3}, []float64{4, 5, 6}, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			herr := checkSample(tc.x, tc.y, cfg)
			if tc.wantStatus == 0 {
				if herr != nil {
					t.Fatalf("checkSample = %q, want nil", herr.msg)
				}
				return
			}
			if herr == nil {
				t.Fatalf("checkSample = nil, want status %d %q", tc.wantStatus, tc.wantMsg)
			}
			if herr.status != tc.wantStatus {
				t.Errorf("status = %d, want %d", herr.status, tc.wantStatus)
			}
			if herr.msg != tc.wantMsg {
				t.Errorf("msg = %q, want %q", herr.msg, tc.wantMsg)
			}
		})
	}
}

func TestSelectStableFlag(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := testdata(200, 3)
	// sorted-f32 is the single-precision path where the flag changes the
	// arithmetic; both settings must round-trip to the direct call.
	for _, stable := range []bool{true, false} {
		req := SelectRequest{X: x, Y: y, Method: "sorted-f32", GridSize: 32, Stable: &stable}
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stable=%v: status %d: %s", stable, resp.StatusCode, body)
		}
		var got SelectResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		want, err := kernreg.SelectBandwidth(x, y,
			kernreg.WithMethod(kernreg.MethodSortedF32), kernreg.GridSize(32), kernreg.Stable(stable))
		if err != nil {
			t.Fatal(err)
		}
		if got.Bandwidth != want.Bandwidth || got.Index != want.Index || got.CV == nil || *got.CV != want.CV {
			t.Errorf("stable=%v: served (h=%g idx=%d cv=%v) differs from direct (h=%g idx=%d cv=%g)",
				stable, got.Bandwidth, got.Index, got.CV, want.Bandwidth, want.Index, want.CV)
		}
	}
	// Omitting the flag must match the default (compensated) path.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y, Method: "sorted-f32", GridSize: 32})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SelectResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := kernreg.SelectBandwidth(x, y, kernreg.WithMethod(kernreg.MethodSortedF32), kernreg.GridSize(32))
	if err != nil {
		t.Fatal(err)
	}
	if got.Bandwidth != want.Bandwidth || got.CV == nil || *got.CV != want.CV {
		t.Errorf("default stable: served (h=%g cv=%v) differs from direct (h=%g cv=%g)",
			got.Bandwidth, got.CV, want.Bandwidth, want.CV)
	}
}

func TestMalformedBodiesAre4xx(t *testing.T) {
	srv := New(Config{Workers: 1, MaxN: 100, MaxGrid: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", ``, http.StatusBadRequest},
		{"not-json", `hello`, http.StatusBadRequest},
		{"wrong-type", `{"x": "abc"}`, http.StatusBadRequest},
		{"nan-literal", `{"x":[NaN,1],"y":[1,2]}`, http.StatusBadRequest},
		{"unknown-field", `{"x":[1,2],"y":[1,2],"bogus":1}`, http.StatusBadRequest},
		{"trailing-garbage", `{"x":[1,2],"y":[1,2]}{}`, http.StatusBadRequest},
		{"length-mismatch", `{"x":[1,2,3],"y":[1,2]}`, http.StatusBadRequest},
		{"too-few", `{"x":[1],"y":[1]}`, http.StatusBadRequest},
		{"unknown-method", `{"x":[1,2],"y":[1,2],"method":"magic"}`, http.StatusBadRequest},
		{"unknown-kernel", `{"x":[1,2],"y":[1,2],"kernel":"box?"}`, http.StatusBadRequest},
		{"negative-grid", `{"x":[1,2],"y":[1,2],"grid_size":-5}`, http.StatusBadRequest},
		{"huge-grid", `{"x":[1,2],"y":[1,2],"grid_size":65536}`, http.StatusRequestEntityTooLarge},
		{"bad-grid-range", `{"x":[1,2],"y":[1,2],"grid_min":3,"grid_max":1}`, http.StatusBadRequest},
		{"constant-x", `{"x":[2,2,2],"y":[1,2,3]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/select", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	// Two cases ("unknown-kernel", "constant-x") pass the structural
	// decoder and are rejected by the selector itself, so they count as
	// Failures rather than Rejected.
	if srv.Metrics().Rejected.Value() < int64(len(cases)-2) {
		t.Fatalf("rejected counter %d, want at least %d", srv.Metrics().Rejected.Value(), len(cases)-2)
	}
	if srv.Metrics().Failures.Value() != 2 {
		t.Fatalf("failures counter %d, want 2", srv.Metrics().Failures.Value())
	}

	// Over-MaxN sample: built programmatically to keep the table small.
	x, y := testdata(101, 2)
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit n: status %d, want 413", resp.StatusCode)
	}
}

// TestConcurrentClientsNoLostOrCrossedResponses is the battery's core:
// many concurrent clients with distinct datasets must each get exactly
// one response, and each response must match the selection computed
// directly for that client's dataset — a crossed or duplicated response
// cannot match, because every dataset has a different optimum.
func TestConcurrentClientsNoLostOrCrossedResponses(t *testing.T) {
	srv := New(Config{Workers: 4, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	const clients = 32
	type outcome struct {
		status int
		got    SelectResponse
		want   kernreg.Selection
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			x, y := testdata(64+c, int64(c))
			want, err := kernreg.SelectBandwidth(x, y, kernreg.GridSize(24))
			if err != nil {
				t.Error(err)
				return
			}
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y, GridSize: 24})
			o := outcome{status: resp.StatusCode, want: want}
			if err := json.Unmarshal(body, &o.got); err != nil && resp.StatusCode == http.StatusOK {
				t.Errorf("client %d: bad body %q: %v", c, body, err)
			}
			outcomes[c] = o
		}(c)
	}
	wg.Wait()

	for c, o := range outcomes {
		if o.status != http.StatusOK {
			t.Fatalf("client %d: status %d (lost response)", c, o.status)
		}
		if o.got.Bandwidth != o.want.Bandwidth || o.got.Index != o.want.Index {
			t.Fatalf("client %d: got (h=%g, idx=%d), want (h=%g, idx=%d) — responses crossed",
				c, o.got.Bandwidth, o.got.Index, o.want.Bandwidth, o.want.Index)
		}
		if o.got.N != 64+c {
			t.Fatalf("client %d: response n=%d, want %d", c, o.got.N, 64+c)
		}
	}
	if got := srv.Metrics().Requests.Value(); got != clients {
		t.Fatalf("requests counter %d, want %d", got, clients)
	}
	if got := srv.Metrics().Latency["select"].Count(); got != clients {
		t.Fatalf("latency histogram count %d, want %d", got, clients)
	}
}

// gate occupies pool slots with jobs that block until released, letting
// the tests force a full queue deterministically.
type gate struct {
	release chan struct{}
	done    sync.WaitGroup
}

func blockPool(s *Server, slots int) *gate {
	g := &gate{release: make(chan struct{})}
	for i := 0; i < slots; i++ {
		g.done.Add(1)
		go func() {
			defer g.done.Done()
			s.submit(context.Background(), func(context.Context) { <-g.release })
		}()
	}
	return g
}

// waitOccupied spins until the pool has absorbed `want` blocked jobs
// (running + queued).
func waitOccupied(t *testing.T, s *Server, wantQueued int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics().QueueDepth() >= wantQueued {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth %d never reached %d", s.Metrics().QueueDepth(), wantQueued)
}

func TestSheddingWhenQueueFull(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One job occupies the single worker, one fills the queue.
	g := blockPool(srv, 2)
	waitOccupied(t, srv, 1)

	x, y := testdata(16, 3)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if got := srv.Metrics().Shed.Value(); got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}

	// Releasing the gate makes the pool serviceable again.
	close(g.release)
	g.done.Wait()
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200: %s", resp.StatusCode, body)
	}
	srv.Drain(context.Background())
}

func TestGracefulDrainCompletesInFlightWork(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the worker and queue one more job behind it.
	g := blockPool(srv, 2)
	waitOccupied(t, srv, 1)

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()

	// Drain must be observable before it completes: new requests are
	// refused with 503 while the gated jobs are still in the pool.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	x, y := testdata(16, 4)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d, want 503: %s", resp.StatusCode, body)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", hresp.StatusCode)
	}

	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) while jobs were still gated", err)
	default:
	}

	// Both gated jobs (in-flight and queued) must complete, then Drain
	// returns cleanly.
	close(g.release)
	g.done.Wait()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after jobs were released")
	}

	// A second Drain is a no-op, not a close-of-closed-channel panic.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestDrainDeadlineExpires(t *testing.T) {
	srv := New(Config{Workers: 1})
	g := blockPool(srv, 1)
	// Give the worker a moment to pick the job up.
	time.Sleep(10 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain with stuck worker: %v, want DeadlineExceeded", err)
	}
	close(g.release)
	g.done.Wait()
}

// TestAbandonedClientFreesWorker verifies the tentpole's cancellation
// path end to end: a client that disconnects mid-selection must not pin
// the worker for the full computation.
func TestAbandonedClientFreesWorker(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	// A deliberately slow request: the naive search at this size takes
	// seconds on one worker.
	x, y := testdata(4000, 5)
	b, err := json.Marshal(SelectRequest{X: x, Y: y, Method: "naive", GridSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/select", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	// Let the selection start, then drop the client.
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request unexpectedly succeeded")
	}

	// The worker must be free again promptly: a small request completes
	// well before the abandoned one could have finished.
	quickX, quickY := testdata(64, 6)
	start := time.Now()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: quickX, Y: quickY})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request: status %d: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("follow-up request took %v; the abandoned selection kept the worker", elapsed)
	}
}

func TestComputeDeadlineMapsTo504(t *testing.T) {
	srv := New(Config{Workers: 1, Timeout: 30 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := testdata(4000, 8)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y, Method: "naive", GridSize: 256})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if srv.Metrics().Failures.Value() != 1 {
		t.Fatalf("failures counter %d, want 1", srv.Metrics().Failures.Value())
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	x, y := testdata(64, 9)
	postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y})

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %s", resp.StatusCode, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics is not JSON: %v\n%s", err, body)
	}
	if m["requests"].(float64) < 1 {
		t.Fatalf("metrics requests = %v, want >= 1", m["requests"])
	}
	if _, ok := m["latency"].(map[string]any)["select"]; !ok {
		t.Fatalf("metrics missing select latency histogram: %s", body)
	}
	gc, ok := m["gc"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing gc block: %s", body)
	}
	for _, key := range []string{"num_gc", "pause_total_ns", "heap_alloc", "total_alloc"} {
		if _, ok := gc[key]; !ok {
			t.Fatalf("metrics gc block missing %q: %s", key, body)
		}
	}
	pool, ok := m["workspace_pool"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing workspace_pool block: %s", body)
	}
	for _, key := range []string{"hits", "misses", "releases"} {
		if _, ok := pool[key]; !ok {
			t.Fatalf("metrics workspace_pool block missing %q: %s", key, body)
		}
	}
}

// TestSelectTwoPointerMethods drives the two-pointer selector family
// end-to-end through the JSON API and checks each agrees with the
// default sorted selection on the same request.
func TestSelectTwoPointerMethods(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := testdata(200, 3)
	base, err := kernreg.SelectBandwidth(x, y, kernreg.GridSize(32))
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"twopointer", "twopointer-parallel", "twopointer-f32"} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select",
			SelectRequest{X: x, Y: y, Method: method, GridSize: 32})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", method, resp.StatusCode, body)
		}
		var got SelectResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("%s: bad response body %q: %v", method, body, err)
		}
		if got.Method != method {
			t.Fatalf("%s: response method %q", method, got.Method)
		}
		if got.Index != base.Index {
			t.Fatalf("%s selected index %d, sorted selected %d", method, got.Index, base.Index)
		}
	}
}

// TestMethodNotAllowed pins the Go 1.22 pattern routing: wrong verbs
// are 405, unknown paths 404.
func TestMethodNotAllowed(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	resp, err := ts.Client().Get(ts.URL + "/v1/select")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/select: %d, want 405", resp.StatusCode)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/nope", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/nope: %d, want 404", resp.StatusCode)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// meaningful under -race, and checks no observation is lost.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("histogram count %d, want %d", h.Count(), workers*per)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(h.String()), &m); err != nil {
		t.Fatalf("histogram String() is not JSON: %v", err)
	}
	var total float64
	for _, v := range m["buckets"].(map[string]any) {
		total += v.(float64)
	}
	if int(total) != workers*per {
		t.Fatalf("bucket sum %v, want %d", total, workers*per)
	}
}

// TestSubmitDuringConcurrentDrain races many submitters against Drain;
// the invariant is purely "no panic, no deadlock, every submit returns"
// — exactly the send-vs-close race the mutex exists to prevent.
func TestSubmitDuringConcurrentDrain(t *testing.T) {
	for round := 0; round < 20; round++ {
		srv := New(Config{Workers: 2, QueueDepth: 2})
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.submit(context.Background(), func(context.Context) {
					time.Sleep(time.Millisecond)
				})
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Drain(context.Background()); err != nil {
				t.Errorf("round %d: Drain: %v", round, err)
			}
		}()
		wg.Wait()
	}
}

func init() {
	// Guard against the test binary inheriting a tiny GOMAXPROCS and
	// the default-config servers having zero workers.
	if got := (Config{}).withDefaults(); got.Workers < 1 || got.QueueDepth < 1 {
		panic(fmt.Sprintf("bad defaults: %+v", got))
	}
}
