package serve

import (
	"context"
	"io"
	"net/http"
	"time"

	"repro/internal/bandwidth"
	"repro/internal/kernel"
	"repro/internal/wire"
)

// Shard protocol: the coordinator splits one selection's candidate grid
// into contiguous sub-grids and POSTs each to a worker replica's
// /v1/shard. The contract is bit-identity — merging the shard winners
// with the lowest-index tie-break must equal the single-node answer
// down to the last bit — so nothing numeric travels as decimal JSON:
// x, y and the explicit grid values arrive as base64 little-endian
// float64 bit streams, and the response carries h and cv as hex bit
// patterns (a degenerate shard can legally score +Inf, which plain
// JSON cannot represent at all).
//
// The endpoint admits work through the same bounded pool as
// /v1/select, so a worker's queue depth — exported by GET /v1/load and
// echoed in every shard response — is an honest backpressure signal
// covering coordinator and direct traffic alike.

// ShardRequest is the body of POST /v1/shard.
type ShardRequest struct {
	// XB64/YB64/GridB64 are base64 little-endian float64 bit streams
	// (wire.EncodeFloat64s). The grid is the shard's explicit candidate
	// values — never a (min, max, k) range, whose reconstruction is not
	// bitwise faithful on a sub-interval.
	XB64    string `json:"x_b64"`
	YB64    string `json:"y_b64"`
	GridB64 string `json:"grid_b64"`
	// Method names the float64 host selector to run ("sorted",
	// "twopointer", "naive", "sorted-parallel", "twopointer-parallel");
	// empty means "sorted".
	Method string `json:"method,omitempty"`
	// Kernel names the kernel function; empty means "epanechnikov".
	Kernel string `json:"kernel,omitempty"`
	// Stable toggles compensated summation; omitted means on.
	Stable *bool `json:"stable,omitempty"`
	// KeepScores returns the shard's full CV vector (bit-encoded).
	KeepScores bool `json:"keep_scores,omitempty"`
	// Offset is the shard's first index in the coordinator's full grid,
	// echoed back so responses are self-describing under hedging.
	Offset int `json:"offset"`
}

// ShardResponse is the body of a successful /v1/shard.
type ShardResponse struct {
	// HBits/CVBits are the winning bandwidth and CV score as hex
	// float64 bit patterns (wire.FormatBits).
	HBits  string `json:"h_bits"`
	CVBits string `json:"cv_bits"`
	// Index is the winner's position within this shard's grid; add
	// Offset for the position in the coordinator's full grid.
	Index  int `json:"index"`
	Offset int `json:"offset"`
	// ScoresB64 carries the shard's CV vector when KeepScores was set.
	ScoresB64 string `json:"scores_b64,omitempty"`
	// QueueDepth is the worker's admission-queue depth at response
	// time — the coordinator's placement signal, piggybacked so a busy
	// cluster needs no extra /v1/load round-trips.
	QueueDepth int `json:"queue_depth"`
	// Worker echoes Config.WorkerLabel.
	Worker    string  `json:"worker,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// LoadResponse is the body of GET /v1/load.
type LoadResponse struct {
	QueueDepth int    `json:"queue_depth"`
	Workers    int    `json:"workers"`
	Draining   bool   `json:"draining"`
	Worker     string `json:"worker,omitempty"`
}

// shardSelector maps a shard method name to its float64 host selector.
// Only the host float64 family is shardable: the conformance contract
// is bit-identity with the single-node answer, which the compensated
// sweep guarantees per grid point (each candidate's accumulator state
// depends only on the data and that candidate, never on which other
// candidates share the grid).
func shardSelector(method string) (func(ctx context.Context, x, y []float64, g bandwidth.Grid, k kernel.Kind, st bandwidth.Stability) (bandwidth.Result, error), *httpError) {
	switch method {
	case "", "sorted":
		return bandwidth.SortedGridSearchKernelStabilityContext, nil
	case "twopointer":
		return bandwidth.TwoPointerGridSearchKernelStabilityContext, nil
	case "naive":
		return func(ctx context.Context, x, y []float64, g bandwidth.Grid, k kernel.Kind, _ bandwidth.Stability) (bandwidth.Result, error) {
			return bandwidth.NaiveGridSearchContext(ctx, x, y, g, k)
		}, nil
	case "sorted-parallel":
		return func(ctx context.Context, x, y []float64, g bandwidth.Grid, k kernel.Kind, st bandwidth.Stability) (bandwidth.Result, error) {
			if k != kernel.Epanechnikov {
				return bandwidth.Result{}, badRequest("method \"sorted-parallel\" supports only the epanechnikov kernel")
			}
			return bandwidth.SortedGridSearchParallelStabilityContext(ctx, x, y, g, 0, st)
		}, nil
	case "twopointer-parallel":
		return func(ctx context.Context, x, y []float64, g bandwidth.Grid, k kernel.Kind, st bandwidth.Stability) (bandwidth.Result, error) {
			if k != kernel.Epanechnikov {
				return bandwidth.Result{}, badRequest("method \"twopointer-parallel\" supports only the epanechnikov kernel")
			}
			return bandwidth.TwoPointerGridSearchParallelStabilityContext(ctx, x, y, g, 0, st)
		}, nil
	}
	return nil, badRequest("method %q is not shardable (want sorted, twopointer, naive, or a -parallel variant)", method)
}

// decodeShardRequest parses and validates a /v1/shard body. All
// failures are 4xx by construction.
func decodeShardRequest(body io.Reader, cfg Config) (*ShardRequest, []float64, []float64, bandwidth.Grid, *httpError) {
	var req ShardRequest
	if herr := decodeJSON(body, &req); herr != nil {
		return nil, nil, nil, bandwidth.Grid{}, herr
	}
	x, err := wire.DecodeFloat64s(req.XB64)
	if err != nil {
		return nil, nil, nil, bandwidth.Grid{}, badRequest("x_b64: %v", err)
	}
	y, err := wire.DecodeFloat64s(req.YB64)
	if err != nil {
		return nil, nil, nil, bandwidth.Grid{}, badRequest("y_b64: %v", err)
	}
	gv, err := wire.DecodeFloat64s(req.GridB64)
	if err != nil {
		return nil, nil, nil, bandwidth.Grid{}, badRequest("grid_b64: %v", err)
	}
	if herr := checkSample(x, y, cfg); herr != nil {
		return nil, nil, nil, bandwidth.Grid{}, herr
	}
	if len(gv) > cfg.MaxGrid {
		return nil, nil, nil, bandwidth.Grid{}, tooLarge("grid of %d points exceeds the limit of %d", len(gv), cfg.MaxGrid)
	}
	g := bandwidth.Grid{H: gv}
	if err := g.Validate(); err != nil {
		return nil, nil, nil, bandwidth.Grid{}, badRequest("grid: %v", err)
	}
	if req.Offset < 0 {
		return nil, nil, nil, bandwidth.Grid{}, badRequest("offset must be non-negative, got %d", req.Offset)
	}
	if req.Kernel != "" {
		if _, err := kernel.Parse(req.Kernel); err != nil {
			return nil, nil, nil, bandwidth.Grid{}, badRequest("unknown kernel %q", req.Kernel)
		}
	}
	if _, herr := shardSelector(req.Method); herr != nil {
		return nil, nil, nil, bandwidth.Grid{}, herr
	}
	return &req, x, y, g, nil
}

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	req, x, y, g, herr := decodeShardRequest(r.Body, s.cfg)
	if herr != nil {
		s.metrics.IncRejected()
		http.Error(w, herr.msg, herr.status)
		return
	}
	sel, _ := shardSelector(req.Method)
	kern := kernel.Epanechnikov
	if req.Kernel != "" {
		kern, _ = kernel.Parse(req.Kernel) // validated by the decoder
	}
	st := bandwidth.Compensated
	if req.Stable != nil && !*req.Stable {
		st = bandwidth.Uncompensated
	}
	start := time.Now()
	var res bandwidth.Result
	ok := s.runJob(w, r, "shard", func(ctx context.Context) error {
		var err error
		res, err = sel(ctx, x, y, g, kern, st)
		return err
	})
	if !ok {
		return
	}
	resp := ShardResponse{
		HBits:      wire.FormatBits(res.H),
		CVBits:     wire.FormatBits(res.CV),
		Index:      res.Index,
		Offset:     req.Offset,
		QueueDepth: s.metrics.QueueDepth(),
		Worker:     s.cfg.WorkerLabel,
		ElapsedMs:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	if req.KeepScores {
		resp.ScoresB64 = wire.EncodeFloat64s(res.Scores)
	}
	writeJSON(w, resp)
}

// handleLoad reports the worker's instantaneous admission-queue depth —
// the coordinator's placement signal. It bypasses the pool: a load
// probe that queued behind the very work it is measuring would be
// useless as a backpressure signal.
func (s *Server) handleLoad(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, LoadResponse{
		QueueDepth: s.metrics.QueueDepth(),
		Workers:    s.cfg.Workers,
		Draining:   s.Draining(),
		Worker:     s.cfg.WorkerLabel,
	})
}
