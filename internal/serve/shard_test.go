package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/kernel"
	"repro/internal/wire"
	"repro/kernreg"
)

// Serve-layer battery for the shard protocol (/v1/shard, /v1/load) and
// the bagged aggregation surface added alongside it.

func TestShardBitRoundTrip(t *testing.T) {
	srv := New(Config{Workers: 2, WorkerLabel: "w-test"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := testdata(200, 31)
	g, err := bandwidth.DefaultGrid(x, 24)
	if err != nil {
		t.Fatal(err)
	}
	// Shard = the middle third of the grid, offset preserved.
	lo, hi := 8, 16
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/shard", ShardRequest{
		XB64:       wire.EncodeFloat64s(x),
		YB64:       wire.EncodeFloat64s(y),
		GridB64:    wire.EncodeFloat64s(g.H[lo:hi]),
		Method:     "twopointer",
		KeepScores: true,
		Offset:     lo,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ShardResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	want, err := bandwidth.TwoPointerGridSearchKernelContext(context.Background(), x, y, bandwidth.Grid{H: g.H[lo:hi]}, kernel.Epanechnikov)
	if err != nil {
		t.Fatal(err)
	}
	h, err := wire.ParseBits(sr.HBits)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := wire.ParseBits(sr.CVBits)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(h) != math.Float64bits(want.H) || math.Float64bits(cv) != math.Float64bits(want.CV) {
		t.Errorf("shard bits differ from direct sweep: h %016x vs %016x, cv %016x vs %016x",
			math.Float64bits(h), math.Float64bits(want.H), math.Float64bits(cv), math.Float64bits(want.CV))
	}
	if sr.Index != want.Index || sr.Offset != lo {
		t.Errorf("index/offset %d/%d, want %d/%d", sr.Index, sr.Offset, want.Index, lo)
	}
	if sr.Worker != "w-test" {
		t.Errorf("worker label %q, want \"w-test\"", sr.Worker)
	}
	scores, err := wire.DecodeFloat64s(sr.ScoresB64)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != hi-lo {
		t.Fatalf("%d scores, want %d", len(scores), hi-lo)
	}
	for i := range scores {
		if math.Float64bits(scores[i]) != math.Float64bits(want.Scores[i]) {
			t.Errorf("scores[%d] bits differ", i)
		}
	}
}

// TestShardNonFiniteCV: alternating ±1e308 responses overflow the
// squared LOOCV residuals, so every candidate scores NaN —
// unrepresentable in plain JSON — and the value must survive the hex
// bit encoding exactly.
func TestShardNonFiniteCV(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x := []float64{0, 1, 2, 3}
	y := []float64{1e308, -1e308, 1e308, -1e308}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/shard", ShardRequest{
		XB64:    wire.EncodeFloat64s(x),
		YB64:    wire.EncodeFloat64s(y),
		GridB64: wire.EncodeFloat64s([]float64{2, 3}),
		Method:  "sorted",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ShardResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	cv, err := wire.ParseBits(sr.CVBits)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(cv) {
		t.Errorf("overflowed shard CV = %v, want NaN", cv)
	}
	if sr.Index != 0 {
		t.Errorf("all-NaN shard should fall back to index 0, got %d", sr.Index)
	}
}

// TestShardRejects locks the 4xx contract of the shard decoder.
func TestShardRejects(t *testing.T) {
	x, y := testdata(50, 32)
	xb, yb := wire.EncodeFloat64s(x), wire.EncodeFloat64s(y)
	gb := wire.EncodeFloat64s([]float64{0.1, 0.2, 0.3})
	cfg := Config{}.withDefaults()
	cases := []struct {
		name string
		req  ShardRequest
		frag string
	}{
		{"bad base64", ShardRequest{XB64: "!!!", YB64: yb, GridB64: gb}, "x_b64"},
		{"truncated floats", ShardRequest{XB64: "AAAA", YB64: yb, GridB64: gb}, "x_b64"},
		{"unsorted grid", ShardRequest{XB64: xb, YB64: yb, GridB64: wire.EncodeFloat64s([]float64{0.3, 0.1})}, "grid"},
		{"negative bandwidth", ShardRequest{XB64: xb, YB64: yb, GridB64: wire.EncodeFloat64s([]float64{-1, 1})}, "grid"},
		{"negative offset", ShardRequest{XB64: xb, YB64: yb, GridB64: gb, Offset: -1}, "offset"},
		{"unknown kernel", ShardRequest{XB64: xb, YB64: yb, GridB64: gb, Kernel: "mystery"}, "kernel"},
		{"unshardable method", ShardRequest{XB64: xb, YB64: yb, GridB64: gb, Method: "bagged"}, "not shardable"},
		{"length mismatch", ShardRequest{XB64: xb, YB64: wire.EncodeFloat64s(y[:10]), GridB64: gb}, "observations"},
	}
	for _, tc := range cases {
		b, err := json.Marshal(tc.req)
		if err != nil {
			t.Fatal(err)
		}
		_, _, _, _, herr := decodeShardRequest(strings.NewReader(string(b)), cfg)
		if herr == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if herr.status < 400 || herr.status >= 500 {
			t.Errorf("%s: status %d, want 4xx", tc.name, herr.status)
		}
		if !strings.Contains(herr.msg, tc.frag) {
			t.Errorf("%s: message %q does not mention %q", tc.name, herr.msg, tc.frag)
		}
	}
}

func TestLoadEndpoint(t *testing.T) {
	srv := New(Config{Workers: 3, WorkerLabel: "probe-me"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	resp, err := ts.Client().Get(ts.URL + "/v1/load")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lr LoadResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.QueueDepth != 0 || lr.Workers != 3 || lr.Draining || lr.Worker != "probe-me" {
		t.Errorf("idle load response %+v", lr)
	}
}

// TestSelectBaggedAggregationField: the "aggregation" JSON field routes
// to the median estimator, the response carries bag_cv_variance, and
// both reject cleanly when misused.
func TestSelectBaggedAggregationField(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	x, y := testdata(600, 33)
	bags, bagSize, seed := 8, 150, int64(42)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{
		X: x, Y: y, Method: "bagged", GridSize: 32,
		Bags: &bags, BagSize: &bagSize, Seed: &seed, Aggregation: "median",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SelectResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := kernreg.SelectBandwidth(x, y,
		kernreg.WithMethod(kernreg.MethodBagged), kernreg.GridSize(32),
		kernreg.Bags(bags), kernreg.BagSize(bagSize), kernreg.Seed(seed),
		kernreg.Aggregation("median"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Bandwidth != want.Bandwidth {
		t.Fatalf("served median h=%g differs from direct call h=%g", got.Bandwidth, want.Bandwidth)
	}
	if got.BagCVVariance == nil {
		t.Fatal("bagged response omitted bag_cv_variance")
	}
	if *got.BagCVVariance != want.BagCVVariance {
		t.Errorf("bag_cv_variance %v, want %v", *got.BagCVVariance, want.BagCVVariance)
	}

	// Misuse: aggregation without the bagged method, unknown value.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{X: x, Y: y, Aggregation: "median"})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "bagged") {
		t.Errorf("aggregation without bagged: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/select", SelectRequest{
		X: x, Y: y, Method: "bagged", Aggregation: "mode",
	})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "aggregation") {
		t.Errorf("unknown aggregation: %d %s", resp.StatusCode, body)
	}
}
