package sortx

import (
	"encoding/binary"
	"math"
	"testing"
)

// Fuzz targets: the seed corpus runs on every `go test`; `go test -fuzz`
// explores further. Inputs are byte strings decoded into float32 keys.

func decodeFloats(data []byte) []float32 {
	n := len(data) / 4
	out := make([]float32, 0, n)
	for i := 0; i < n; i++ {
		bits := binary.LittleEndian.Uint32(data[i*4:])
		f := math.Float32frombits(bits)
		if f != f { // NaN keys make "sorted" undefined; exclude
			continue
		}
		out = append(out, f)
	}
	return out
}

func FuzzQuickSort32(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{0, 0, 128, 63, 0, 0, 128, 191}) // 1.0, -1.0
	seed := make([]byte, 4*100)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := decodeFloats(data)
		payload := make([]float32, len(keys))
		sum := float64(0)
		for i, k := range keys {
			payload[i] = k
			sum += float64(k)
		}
		QuickSort32(keys, payload)
		if !IsSorted32(keys) {
			t.Fatal("not sorted")
		}
		var sum2 float64
		for i := range keys {
			if payload[i] != keys[i] {
				t.Fatal("payload decoupled")
			}
			sum2 += float64(keys[i])
		}
		// Multiset preserved (cheap proxy: the sum, exact for the same
		// float values in any order under float64 accumulation... allow
		// reordering tolerance).
		if !(math.Abs(sum-sum2) <= 1e-6*(1+math.Abs(sum))) && !math.IsInf(sum, 0) {
			t.Fatalf("element sum changed: %v vs %v", sum, sum2)
		}
	})
}

func FuzzIntroSort64(f *testing.F) {
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := decodeFloats(data)
		keys := make([]float64, len(fs))
		for i, v := range fs {
			keys[i] = float64(v)
		}
		IntroSort64(keys, nil)
		if !IsSorted64(keys) {
			t.Fatal("not sorted")
		}
	})
}
