// Package sortx implements the sorting machinery the paper's fast grid
// search depends on. The centrepiece is an iterative (explicit-stack,
// non-recursive) QuickSort that co-sorts a payload array with the keys —
// the Finley variant the paper adapts for its CUDA device code, where
// recursion is unavailable on early compute capabilities. Host-side helpers
// (argsort, insertion sort, heapsort, an introsort that bounds QuickSort's
// worst case) round out the package.
//
// All routines sort ascending and are deliberately not stable: the device
// algorithm does not require stability, only that keys and payloads move
// together.
package sortx

// maxStack is the explicit-stack depth for the iterative QuickSorts. Each
// partition pushes at most one side, and the smaller side is always
// processed first, so depth is bounded by log2(n); 64 covers any slice that
// fits in memory.
const maxStack = 64

// insertionCutoff is the partition size below which the QuickSorts switch
// to insertion sort.
const insertionCutoff = 12

// QuickSort32 sorts keys ascending and applies the identical permutation to
// payload, using an iterative QuickSort with an explicit stack. It mirrors
// the device sort in the paper: single precision keys, one auxiliary array,
// no recursion. payload may be nil; otherwise len(payload) must equal
// len(keys).
func QuickSort32(keys, payload []float32) {
	if payload != nil && len(payload) != len(keys) {
		panic("sortx: QuickSort32 payload length mismatch")
	}
	if len(keys) < 2 {
		return
	}
	var stack [maxStack][2]int
	top := 0
	stack[top] = [2]int{0, len(keys) - 1}
	top++
	for top > 0 {
		top--
		lo, hi := stack[top][0], stack[top][1]
		for hi-lo >= insertionCutoff {
			p := partition32(keys, payload, lo, hi)
			// Push the larger side, iterate on the smaller to bound
			// the stack at log2(n).
			if p-lo < hi-p {
				stack[top] = [2]int{p + 1, hi}
				top++
				hi = p - 1
			} else {
				stack[top] = [2]int{lo, p - 1}
				top++
				lo = p + 1
			}
		}
		insertion32(keys, payload, lo, hi)
	}
}

// partition32 partitions keys[lo..hi] around a median-of-three pivot and
// returns the pivot's final index.
func partition32(keys, payload []float32, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order lo, mid, hi.
	if keys[mid] < keys[lo] {
		swap32(keys, payload, mid, lo)
	}
	if keys[hi] < keys[lo] {
		swap32(keys, payload, hi, lo)
	}
	if keys[hi] < keys[mid] {
		swap32(keys, payload, hi, mid)
	}
	// Pivot at hi-1 (keys[hi] is already >= pivot).
	swap32(keys, payload, mid, hi-1)
	pivot := keys[hi-1]
	i, j := lo, hi-1
	for {
		for i++; keys[i] < pivot; i++ {
		}
		for j--; keys[j] > pivot; j-- {
		}
		if i >= j {
			break
		}
		swap32(keys, payload, i, j)
	}
	swap32(keys, payload, i, hi-1)
	return i
}

func swap32(keys, payload []float32, i, j int) {
	keys[i], keys[j] = keys[j], keys[i]
	if payload != nil {
		payload[i], payload[j] = payload[j], payload[i]
	}
}

// insertion32 insertion-sorts keys[lo..hi] with its payload.
func insertion32(keys, payload []float32, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		k := keys[i]
		var p float32
		if payload != nil {
			p = payload[i]
		}
		j := i - 1
		for j >= lo && keys[j] > k {
			keys[j+1] = keys[j]
			if payload != nil {
				payload[j+1] = payload[j]
			}
			j--
		}
		keys[j+1] = k
		if payload != nil {
			payload[j+1] = p
		}
	}
}

// QuickSort64 is the float64 variant of QuickSort32, used by the host-side
// (double precision) sorted grid search.
func QuickSort64(keys, payload []float64) {
	if payload != nil && len(payload) != len(keys) {
		panic("sortx: QuickSort64 payload length mismatch")
	}
	if len(keys) < 2 {
		return
	}
	var stack [maxStack][2]int
	top := 0
	stack[top] = [2]int{0, len(keys) - 1}
	top++
	for top > 0 {
		top--
		lo, hi := stack[top][0], stack[top][1]
		for hi-lo >= insertionCutoff {
			p := partition64(keys, payload, lo, hi)
			if p-lo < hi-p {
				stack[top] = [2]int{p + 1, hi}
				top++
				hi = p - 1
			} else {
				stack[top] = [2]int{lo, p - 1}
				top++
				lo = p + 1
			}
		}
		insertion64(keys, payload, lo, hi)
	}
}

func partition64(keys, payload []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if keys[mid] < keys[lo] {
		swap64(keys, payload, mid, lo)
	}
	if keys[hi] < keys[lo] {
		swap64(keys, payload, hi, lo)
	}
	if keys[hi] < keys[mid] {
		swap64(keys, payload, hi, mid)
	}
	swap64(keys, payload, mid, hi-1)
	pivot := keys[hi-1]
	i, j := lo, hi-1
	for {
		for i++; keys[i] < pivot; i++ {
		}
		for j--; keys[j] > pivot; j-- {
		}
		if i >= j {
			break
		}
		swap64(keys, payload, i, j)
	}
	swap64(keys, payload, i, hi-1)
	return i
}

func swap64(keys, payload []float64, i, j int) {
	keys[i], keys[j] = keys[j], keys[i]
	if payload != nil {
		payload[i], payload[j] = payload[j], payload[i]
	}
}

func insertion64(keys, payload []float64, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		k := keys[i]
		var p float64
		if payload != nil {
			p = payload[i]
		}
		j := i - 1
		for j >= lo && keys[j] > k {
			keys[j+1] = keys[j]
			if payload != nil {
				payload[j+1] = payload[j]
			}
			j--
		}
		keys[j+1] = k
		if payload != nil {
			payload[j+1] = p
		}
	}
}

// RecursiveQuickSort32 is the textbook recursive QuickSort the paper
// replaces with the iterative version; it exists as the ablation baseline
// for DESIGN.md decision 3 (recursion depth and call overhead accounting).
// depthOut, if non-nil, receives the maximum recursion depth reached.
func RecursiveQuickSort32(keys, payload []float32, depthOut *int) {
	if payload != nil && len(payload) != len(keys) {
		panic("sortx: RecursiveQuickSort32 payload length mismatch")
	}
	if len(keys) < 2 {
		return
	}
	d := recursive32(keys, payload, 0, len(keys)-1, 1)
	if depthOut != nil {
		*depthOut = d
	}
}

func recursive32(keys, payload []float32, lo, hi, depth int) int {
	if hi-lo < insertionCutoff {
		insertion32(keys, payload, lo, hi)
		return depth
	}
	p := partition32(keys, payload, lo, hi)
	dl := recursive32(keys, payload, lo, p-1, depth+1)
	dr := recursive32(keys, payload, p+1, hi, depth+1)
	if dl > dr {
		return dl
	}
	return dr
}

// HeapSort64 sorts keys ascending with payload co-sorted, in guaranteed
// O(n log n); it is the fallback IntroSort64 switches to when QuickSort's
// partitioning degenerates.
func HeapSort64(keys, payload []float64) {
	n := len(keys)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown64(keys, payload, i, n)
	}
	for end := n - 1; end > 0; end-- {
		swap64(keys, payload, 0, end)
		siftDown64(keys, payload, 0, end)
	}
}

func siftDown64(keys, payload []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && keys[child+1] > keys[child] {
			child++
		}
		if keys[root] >= keys[child] {
			return
		}
		swap64(keys, payload, root, child)
		root = child
	}
}

// IntroSort64 sorts keys ascending with payload co-sorted, starting as
// QuickSort and falling back to heapsort when depth exceeds 2*log2(n),
// giving a strict O(n log n) bound even on adversarial inputs.
func IntroSort64(keys, payload []float64) {
	if payload != nil && len(payload) != len(keys) {
		panic("sortx: IntroSort64 payload length mismatch")
	}
	n := len(keys)
	if n < 2 {
		return
	}
	limit := 2 * ilog2(n)
	intro64(keys, payload, 0, n-1, limit)
}

func intro64(keys, payload []float64, lo, hi, limit int) {
	for hi-lo >= insertionCutoff {
		if limit == 0 {
			HeapSort64(keys[lo:hi+1], payloadSlice(payload, lo, hi))
			return
		}
		limit--
		p := partition64(keys, payload, lo, hi)
		if p-lo < hi-p {
			intro64(keys, payload, lo, p-1, limit)
			lo = p + 1
		} else {
			intro64(keys, payload, p+1, hi, limit)
			hi = p - 1
		}
	}
	insertion64(keys, payload, lo, hi)
}

func payloadSlice(payload []float64, lo, hi int) []float64 {
	if payload == nil {
		return nil
	}
	return payload[lo : hi+1]
}

func ilog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// ArgSort64 returns a permutation idx such that keys[idx[0]] <=
// keys[idx[1]] <= ... without modifying keys. Used by the host sorted grid
// search, which needs the neighbour order but must keep the original
// arrays intact across observations.
func ArgSort64(keys []float64) []int {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	argQuick64(keys, idx, 0, len(idx)-1)
	return idx
}

func argQuick64(keys []float64, idx []int, lo, hi int) {
	var stack [maxStack][2]int
	top := 0
	if lo >= hi {
		return
	}
	stack[top] = [2]int{lo, hi}
	top++
	for top > 0 {
		top--
		l, h := stack[top][0], stack[top][1]
		for h-l >= insertionCutoff {
			p := argPartition64(keys, idx, l, h)
			if p-l < h-p {
				stack[top] = [2]int{p + 1, h}
				top++
				h = p - 1
			} else {
				stack[top] = [2]int{l, p - 1}
				top++
				l = p + 1
			}
		}
		for i := l + 1; i <= h; i++ {
			v := idx[i]
			j := i - 1
			for j >= l && keys[idx[j]] > keys[v] {
				idx[j+1] = idx[j]
				j--
			}
			idx[j+1] = v
		}
	}
}

func argPartition64(keys []float64, idx []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if keys[idx[mid]] < keys[idx[lo]] {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if keys[idx[hi]] < keys[idx[lo]] {
		idx[hi], idx[lo] = idx[lo], idx[hi]
	}
	if keys[idx[hi]] < keys[idx[mid]] {
		idx[hi], idx[mid] = idx[mid], idx[hi]
	}
	idx[mid], idx[hi-1] = idx[hi-1], idx[mid]
	pivot := keys[idx[hi-1]]
	i, j := lo, hi-1
	for {
		for i++; keys[idx[i]] < pivot; i++ {
		}
		for j--; keys[idx[j]] > pivot; j-- {
		}
		if i >= j {
			break
		}
		idx[i], idx[j] = idx[j], idx[i]
	}
	idx[i], idx[hi-1] = idx[hi-1], idx[i]
	return i
}

// IsSorted32 reports whether keys is in ascending order.
func IsSorted32(keys []float32) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// IsSorted64 reports whether keys is in ascending order.
func IsSorted64(keys []float64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}
