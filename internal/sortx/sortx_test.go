package sortx

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// checkPermutation verifies that after is a permutation of before by
// comparing sorted copies.
func checkPermutation(t *testing.T, before, after []float64) {
	t.Helper()
	a := append([]float64(nil), before...)
	b := append([]float64(nil), after...)
	sort.Float64s(a)
	sort.Float64s(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result is not a permutation of the input")
		}
	}
}

func randomFloats32(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

func TestQuickSort32Basic(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 12, 13, 100, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		keys := randomFloats32(rng, n)
		orig := append([]float32(nil), keys...)
		QuickSort32(keys, nil)
		if !IsSorted32(keys) {
			t.Fatalf("n=%d: not sorted", n)
		}
		b64 := make([]float64, n)
		a64 := make([]float64, n)
		for i := range orig {
			b64[i], a64[i] = float64(orig[i]), float64(keys[i])
		}
		checkPermutation(t, b64, a64)
	}
}

func TestQuickSort32PayloadFollowsKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		keys := randomFloats32(rng, n)
		// Payload encodes the original key so the pairing is checkable
		// even after duplicate keys move around.
		payload := make([]float32, n)
		for i := range payload {
			payload[i] = keys[i] * 3
		}
		QuickSort32(keys, payload)
		if !IsSorted32(keys) {
			t.Fatal("not sorted")
		}
		for i := range keys {
			if payload[i] != keys[i]*3 {
				t.Fatalf("payload decoupled from key at %d: key %v payload %v", i, keys[i], payload[i])
			}
		}
	}
}

func TestQuickSort32PayloadMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	QuickSort32(make([]float32, 3), make([]float32, 2))
}

func TestQuickSort32AdversarialPatterns(t *testing.T) {
	patterns := map[string]func(n int) []float32{
		"sorted": func(n int) []float32 {
			out := make([]float32, n)
			for i := range out {
				out[i] = float32(i)
			}
			return out
		},
		"reverse": func(n int) []float32 {
			out := make([]float32, n)
			for i := range out {
				out[i] = float32(n - i)
			}
			return out
		},
		"constant": func(n int) []float32 {
			out := make([]float32, n)
			for i := range out {
				out[i] = 7
			}
			return out
		},
		"organ-pipe": func(n int) []float32 {
			out := make([]float32, n)
			for i := range out {
				if i < n/2 {
					out[i] = float32(i)
				} else {
					out[i] = float32(n - i)
				}
			}
			return out
		},
		"two-values": func(n int) []float32 {
			out := make([]float32, n)
			for i := range out {
				out[i] = float32(i % 2)
			}
			return out
		},
	}
	for name, gen := range patterns {
		for _, n := range []int{10, 100, 4096} {
			keys := gen(n)
			QuickSort32(keys, nil)
			if !IsSorted32(keys) {
				t.Errorf("%s n=%d: not sorted", name, n)
			}
		}
	}
}

func TestQuickSort64Property(t *testing.T) {
	f := func(raw []float64) bool {
		keys := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				keys = append(keys, v)
			}
		}
		orig := append([]float64(nil), keys...)
		payload := append([]float64(nil), keys...)
		QuickSort64(keys, payload)
		if !IsSorted64(keys) {
			return false
		}
		for i := range keys {
			if payload[i] != keys[i] {
				return false
			}
		}
		sort.Float64s(orig)
		for i := range orig {
			if orig[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRecursiveMatchesIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(500)
		keys := randomFloats32(rng, n)
		it := append([]float32(nil), keys...)
		rec := append([]float32(nil), keys...)
		pIt := append([]float32(nil), keys...)
		pRec := append([]float32(nil), keys...)
		QuickSort32(it, pIt)
		var depth int
		RecursiveQuickSort32(rec, pRec, &depth)
		for i := range it {
			if it[i] != rec[i] {
				t.Fatalf("iterative and recursive sorts disagree at %d", i)
			}
		}
		if n >= 16 && depth < 1 {
			t.Errorf("recursion depth not recorded (n=%d)", n)
		}
		// Depth should be well short of n for random inputs.
		if depth > n {
			t.Errorf("depth %d exceeds n=%d", depth, n)
		}
	}
}

func TestHeapSort64(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	keys := make([]float64, 777)
	payload := make([]float64, 777)
	for i := range keys {
		keys[i] = rng.NormFloat64()
		payload[i] = keys[i] * 2
	}
	HeapSort64(keys, payload)
	if !IsSorted64(keys) {
		t.Fatal("heapsort failed")
	}
	for i := range keys {
		if payload[i] != keys[i]*2 {
			t.Fatal("heapsort payload decoupled")
		}
	}
}

func TestIntroSort64WorstCase(t *testing.T) {
	// A killer pattern for plain quicksort: already sorted with many
	// duplicates; introsort must still finish and sort correctly.
	n := 1 << 14
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i % 17)
	}
	IntroSort64(keys, nil)
	if !IsSorted64(keys) {
		t.Fatal("introsort failed on duplicate-heavy input")
	}
	// With payload and random data.
	rng := rand.New(rand.NewSource(2))
	payload := make([]float64, 1000)
	keys2 := make([]float64, 1000)
	for i := range keys2 {
		keys2[i] = rng.Float64()
		payload[i] = -keys2[i]
	}
	IntroSort64(keys2, payload)
	if !IsSorted64(keys2) {
		t.Fatal("introsort failed")
	}
	for i := range keys2 {
		if payload[i] != -keys2[i] {
			t.Fatal("introsort payload decoupled")
		}
	}
}

func TestArgSort64(t *testing.T) {
	keys := []float64{0.3, 0.1, 0.2, 0.1}
	idx := ArgSort64(keys)
	// keys untouched
	if keys[0] != 0.3 {
		t.Fatal("ArgSort64 modified keys")
	}
	prev := math.Inf(-1)
	seen := make(map[int]bool)
	for _, i := range idx {
		if keys[i] < prev {
			t.Fatalf("ArgSort64 order wrong: %v", idx)
		}
		prev = keys[i]
		if seen[i] {
			t.Fatalf("ArgSort64 repeated index %d", i)
		}
		seen[i] = true
	}
}

func TestArgSort64Property(t *testing.T) {
	f := func(raw []float64) bool {
		keys := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				keys = append(keys, v)
			}
		}
		idx := ArgSort64(keys)
		if len(idx) != len(keys) {
			return false
		}
		for i := 1; i < len(idx); i++ {
			if keys[idx[i]] < keys[idx[i-1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted32([]float32{1, 2, 2, 3}) || IsSorted32([]float32{2, 1}) {
		t.Error("IsSorted32 wrong")
	}
	if !IsSorted64(nil) || !IsSorted64([]float64{5}) {
		t.Error("IsSorted64 degenerate cases wrong")
	}
}

func BenchmarkQuickSort32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 4096
	src := randomFloats32(rng, n)
	keys := make([]float32, n)
	payload := make([]float32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, src)
		copy(payload, src)
		QuickSort32(keys, payload)
	}
}

func BenchmarkIntroSort64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 4096
	src := make([]float64, n)
	for i := range src {
		src[i] = rng.Float64()
	}
	keys := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, src)
		IntroSort64(keys, nil)
	}
}
