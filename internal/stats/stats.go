// Package stats provides the descriptive statistics used across the
// experiment harness and tests: moments, quantiles, error metrics, and the
// run-time summary helpers (median-of-five) the paper's measurement
// protocol calls for.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs,
// or NaN when fewer than two values are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest elements of xs. It panics on an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Range returns max - min of xs — the "domain" of X the paper uses as the
// default maximum bandwidth.
func Range(xs []float64) float64 {
	min, max := MinMax(xs)
	return max - min
}

// Quantile returns the p-th quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (R type-7). xs is not modified.
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if p < 0 || p > 1 {
		panic("stats: Quantile p out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR returns the interquartile range Q3 - Q1 of xs, used by the
// Silverman rule of thumb.
func IQR(xs []float64) float64 { return Quantile(xs, 0.75) - Quantile(xs, 0.25) }

// RMSE returns the root mean squared error between predictions yhat and
// targets y. The slices must be the same length.
func RMSE(yhat, y []float64) float64 {
	if len(yhat) != len(y) {
		panic("stats: RMSE length mismatch")
	}
	if len(y) == 0 {
		return math.NaN()
	}
	var ss float64
	for i := range y {
		d := yhat[i] - y[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(y)))
}

// MAE returns the mean absolute error between yhat and y.
func MAE(yhat, y []float64) float64 {
	if len(yhat) != len(y) {
		panic("stats: MAE length mismatch")
	}
	if len(y) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range y {
		s += math.Abs(yhat[i] - y[i])
	}
	return s / float64(len(y))
}

// MaxAbsDiff returns max_i |a[i]-b[i]|, the agreement metric the
// correctness protocol (§IV.C of the paper) uses when checking that the
// sequential and device programs produce identical results.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// RunSummary summarises repeated run-time measurements of one experiment
// cell. The paper runs each (program, n, k) combination five times; the
// harness reports the median.
type RunSummary struct {
	Runs   int
	Median float64
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a RunSummary over seconds. It panics on an empty
// slice.
func Summarize(seconds []float64) RunSummary {
	if len(seconds) == 0 {
		panic("stats: Summarize of empty slice")
	}
	min, max := MinMax(seconds)
	sd := 0.0
	if len(seconds) >= 2 {
		sd = StdDev(seconds)
	}
	return RunSummary{
		Runs:   len(seconds),
		Median: Median(seconds),
		Mean:   Mean(seconds),
		Min:    min,
		Max:    max,
		StdDev: sd,
	}
}

// Correlation returns the Pearson correlation of x and y, or NaN when
// either is constant or the slices are shorter than 2.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Correlation length mismatch")
	}
	n := len(x)
	if n < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
