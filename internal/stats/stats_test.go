package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean of empty should be NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n−1 denominator: 32/7.
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one value should be NaN")
	}
}

func TestMinMaxRange(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 4, 1, 5})
	if min != -1 || max != 5 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	if Range([]float64{3, -1, 4}) != 5 {
		t.Error("Range wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(empty) should panic")
		}
	}()
	MinMax(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for p, want := range cases {
		if got := Quantile(xs, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", p, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median = %v", got)
	}
	// Input must not be reordered.
	orig := []float64{5, 1, 3}
	Quantile(orig, 0.5)
	if orig[0] != 5 {
		t.Error("Quantile modified its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Error("single-element quantile wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile(p>1) should panic")
		}
	}()
	Quantile(xs, 1.5)
}

func TestMedianIQR(t *testing.T) {
	if Median([]float64{1, 3, 2}) != 2 {
		t.Error("Median wrong")
	}
	if got := IQR([]float64{1, 2, 3, 4, 5}); math.Abs(got-2) > 1e-12 {
		t.Errorf("IQR = %v", got)
	}
}

func TestRMSEMAE(t *testing.T) {
	yhat := []float64{1, 2, 3}
	y := []float64{1, 2, 7}
	if got := RMSE(yhat, y); math.Abs(got-4/math.Sqrt(3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := MAE(yhat, y); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("MAE = %v", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) || !math.IsNaN(MAE(nil, nil)) {
		t.Error("empty error metrics should be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Error("RMSE length mismatch should panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestMaxAbsDiff(t *testing.T) {
	if MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 0, 3.5}) != 2 {
		t.Error("MaxAbsDiff wrong")
	}
	if MaxAbsDiff(nil, nil) != 0 {
		t.Error("MaxAbsDiff of empty should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2, 5, 4})
	if s.Runs != 5 || s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.StdDev <= 0 {
		t.Error("StdDev should be positive")
	}
	one := Summarize([]float64{2.5})
	if one.StdDev != 0 || one.Median != 2.5 {
		t.Errorf("single-run summary = %+v", one)
	}
	defer func() {
		if recover() == nil {
			t.Error("Summarize(empty) should panic")
		}
	}()
	Summarize(nil)
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Correlation(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Correlation(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Correlation(x, []float64{1, 1, 1, 1})) {
		t.Error("constant series should give NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := Quantile(xs, p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMedianBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		min, max := MinMax(xs)
		m := Median(xs)
		return m >= min && m <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
