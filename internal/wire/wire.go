// Package wire provides bit-faithful float64 encodings for the
// coordinator shard protocol and the result-cache fingerprint.
//
// JSON cannot carry ±Inf or NaN, and round-tripping floats through
// decimal text invites shortest-representation surprises at the exact
// moment the cluster contract demands bit-identity (a sharded answer
// must equal the single-node answer down to the last bit, degenerate
// ±Inf CV scores included). So every float that crosses a process
// boundary travels as its IEEE-754 bit pattern: slices as base64 of
// the little-endian u64 stream, scalars as fixed-width hex.
//
// The whole package is under the bit-determinism contract:
//
//kernvet:bitexact
package wire

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// AppendFloat64LE appends v's IEEE-754 bits to dst, little-endian.
func AppendFloat64LE(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// EncodeFloat64s renders vs as standard base64 of the concatenated
// little-endian bit patterns. Every value round-trips exactly,
// including NaN payloads and ±Inf.
func EncodeFloat64s(vs []float64) string {
	buf := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		buf = AppendFloat64LE(buf, v)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// DecodeFloat64s inverts EncodeFloat64s. The payload length must be a
// multiple of eight bytes.
func DecodeFloat64s(s string) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("wire: invalid base64: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("wire: float64 payload of %d bytes is not a multiple of 8", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// FormatBits renders one float64 as 16 lowercase hex digits of its bit
// pattern — the scalar counterpart of EncodeFloat64s, used for the h
// and cv fields of a shard response.
func FormatBits(v float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(v))
}

// ParseBits inverts FormatBits.
func ParseBits(s string) (float64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("wire: bit pattern %q is not 16 hex digits", s)
	}
	u, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("wire: invalid bit pattern %q: %w", s, err)
	}
	return math.Float64frombits(u), nil
}
