package wire

import (
	"math"
	"testing"
)

// awkward covers every value class JSON would mangle: negative zero,
// denormals, ±Inf, and NaNs with distinct payloads.
var awkward = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, 1e300, 5e-324, -5e-324,
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.Float64frombits(0x7ff0000000000001), // signalling-style NaN payload
	math.Float64frombits(0xfff0deadbeef0001), // negative signalling-style NaN payload
	math.Float64frombits(0xfff8000000000123),
	math.Float64frombits(0x000fffffffffffff), // largest subnormal
	math.Float64frombits(0x800fffffffffffff), // most negative subnormal
	math.MaxFloat64, -math.MaxFloat64,
}

func TestFloat64sRoundTrip(t *testing.T) {
	got, err := DecodeFloat64s(EncodeFloat64s(awkward))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(awkward) {
		t.Fatalf("length %d, want %d", len(got), len(awkward))
	}
	for i, v := range awkward {
		if math.Float64bits(got[i]) != math.Float64bits(v) {
			t.Errorf("index %d: bits %016x, want %016x", i, math.Float64bits(got[i]), math.Float64bits(v))
		}
	}
}

func TestFloat64sEmpty(t *testing.T) {
	got, err := DecodeFloat64s(EncodeFloat64s(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round-trip: %v, %v", got, err)
	}
}

func TestDecodeFloat64sRejects(t *testing.T) {
	if _, err := DecodeFloat64s("not base64!!!"); err == nil {
		t.Error("invalid base64 accepted")
	}
	// 4 bytes: valid base64, invalid payload length.
	if _, err := DecodeFloat64s("AAAAAA=="); err == nil {
		t.Error("non-multiple-of-8 payload accepted")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	for _, v := range awkward {
		s := FormatBits(v)
		if len(s) != 16 {
			t.Fatalf("FormatBits(%g) = %q, want 16 digits", v, s)
		}
		got, err := ParseBits(s)
		if err != nil {
			t.Fatalf("ParseBits(%q): %v", s, err)
		}
		if math.Float64bits(got) != math.Float64bits(v) {
			t.Errorf("round-trip of %g: bits %016x, want %016x", v, math.Float64bits(got), math.Float64bits(v))
		}
	}
}

// TestFloat64sDecodeEncodeCanonical pins the opposite direction of the
// round trip: decoding a wire string our own encoder produced and
// re-encoding the result must reproduce the string byte for byte. The
// coordinator's result cache fingerprints requests by their encoded
// form, so a non-canonical re-encode would split identical jobs across
// cache entries.
func TestFloat64sDecodeEncodeCanonical(t *testing.T) {
	enc := EncodeFloat64s(awkward)
	vs, err := DecodeFloat64s(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got := EncodeFloat64s(vs); got != enc {
		t.Errorf("decode→encode not canonical:\n got %q\nwant %q", got, enc)
	}
}

// TestBitsParseFormatCanonical is the scalar counterpart: parsing a
// FormatBits string and re-formatting must reproduce it exactly,
// including NaN payloads and subnormal patterns.
func TestBitsParseFormatCanonical(t *testing.T) {
	for _, v := range awkward {
		s := FormatBits(v)
		got, err := ParseBits(s)
		if err != nil {
			t.Fatalf("ParseBits(%q): %v", s, err)
		}
		if rt := FormatBits(got); rt != s {
			t.Errorf("parse→format not canonical: %q became %q", s, rt)
		}
	}
}

func TestParseBitsRejects(t *testing.T) {
	for _, s := range []string{"", "0", "00000000000000000", "zzzzzzzzzzzzzzzz", "0x00000000000000"} {
		if _, err := ParseBits(s); err == nil {
			t.Errorf("ParseBits(%q) accepted", s)
		}
	}
}

// FuzzFloat64sRoundTrip drives DecodeFloat64s with arbitrary strings.
// Anything the decoder accepts must survive an encode→decode cycle
// bit for bit — the exact property the shard protocol stands on. The
// seed corpus covers the full awkward battery (subnormals, negative
// zero, NaN payloads in both sign halves) plus the empty stream and a
// handful of malformed inputs that must keep being rejected cleanly.
func FuzzFloat64sRoundTrip(f *testing.F) {
	f.Add(EncodeFloat64s(awkward))
	f.Add(EncodeFloat64s(nil))
	for _, v := range awkward {
		f.Add(EncodeFloat64s([]float64{v}))
	}
	f.Add("not base64!!!")
	f.Add("AAAAAA==")
	f.Fuzz(func(t *testing.T, s string) {
		vs, err := DecodeFloat64s(s)
		if err != nil {
			return // rejected input; only panics are failures here
		}
		back, err := DecodeFloat64s(EncodeFloat64s(vs))
		if err != nil {
			t.Fatalf("re-decode of our own encoding failed: %v", err)
		}
		if len(back) != len(vs) {
			t.Fatalf("round trip changed length: %d → %d", len(vs), len(back))
		}
		for i := range vs {
			if math.Float64bits(back[i]) != math.Float64bits(vs[i]) {
				t.Errorf("index %d: bits %016x became %016x",
					i, math.Float64bits(vs[i]), math.Float64bits(back[i]))
			}
		}
	})
}

// FuzzBitsRoundTrip drives the scalar hex path over arbitrary bit
// patterns: every uint64 names a float64 (NaN payloads included), and
// FormatBits→ParseBits must hand back exactly those bits.
func FuzzBitsRoundTrip(f *testing.F) {
	for _, v := range awkward {
		f.Add(math.Float64bits(v))
	}
	f.Add(uint64(0x0000000000000001)) // smallest subnormal, raw bits
	f.Add(uint64(0x8000000000000000)) // negative zero, raw bits
	f.Fuzz(func(t *testing.T, u uint64) {
		got, err := ParseBits(FormatBits(math.Float64frombits(u)))
		if err != nil {
			t.Fatalf("ParseBits rejected our own FormatBits output for %016x: %v", u, err)
		}
		if math.Float64bits(got) != u {
			t.Errorf("bits %016x round-tripped to %016x", u, math.Float64bits(got))
		}
	})
}
