package wire

import (
	"math"
	"testing"
)

// awkward covers every value class JSON would mangle: negative zero,
// denormals, ±Inf, and NaNs with distinct payloads.
var awkward = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, 1e300, 5e-324, -5e-324,
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.Float64frombits(0x7ff0000000000001), // signalling-style NaN payload
	math.Float64frombits(0xfff8000000000123),
	math.MaxFloat64, -math.MaxFloat64,
}

func TestFloat64sRoundTrip(t *testing.T) {
	got, err := DecodeFloat64s(EncodeFloat64s(awkward))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(awkward) {
		t.Fatalf("length %d, want %d", len(got), len(awkward))
	}
	for i, v := range awkward {
		if math.Float64bits(got[i]) != math.Float64bits(v) {
			t.Errorf("index %d: bits %016x, want %016x", i, math.Float64bits(got[i]), math.Float64bits(v))
		}
	}
}

func TestFloat64sEmpty(t *testing.T) {
	got, err := DecodeFloat64s(EncodeFloat64s(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round-trip: %v, %v", got, err)
	}
}

func TestDecodeFloat64sRejects(t *testing.T) {
	if _, err := DecodeFloat64s("not base64!!!"); err == nil {
		t.Error("invalid base64 accepted")
	}
	// 4 bytes: valid base64, invalid payload length.
	if _, err := DecodeFloat64s("AAAAAA=="); err == nil {
		t.Error("non-multiple-of-8 payload accepted")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	for _, v := range awkward {
		s := FormatBits(v)
		if len(s) != 16 {
			t.Fatalf("FormatBits(%g) = %q, want 16 digits", v, s)
		}
		got, err := ParseBits(s)
		if err != nil {
			t.Fatalf("ParseBits(%q): %v", s, err)
		}
		if math.Float64bits(got) != math.Float64bits(v) {
			t.Errorf("round-trip of %g: bits %016x, want %016x", v, math.Float64bits(got), math.Float64bits(v))
		}
	}
}

func TestParseBitsRejects(t *testing.T) {
	for _, s := range []string{"", "0", "00000000000000000", "zzzzzzzzzzzzzzzz", "0x00000000000000"} {
		if _, err := ParseBits(s); err == nil {
			t.Errorf("ParseBits(%q) accepted", s)
		}
	}
}
