package kernreg

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// Public-API contract of SelectBandwidthContext: cancellation surfaces
// as the context error with a zero Selection for every method, a nil
// context behaves as Background, and an unused live context leaves the
// selection bit-identical to SelectBandwidth.

func ctxSample(n int) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n)
		y[i] = math.Sin(10 * x[i])
	}
	return x, y
}

// ctxMethods are the methods cancellation must reach; estimator and
// criterion variants ride the same dispatch.
var ctxMethods = []Method{MethodSorted, MethodSortedParallel, MethodSortedF32, MethodNaive, MethodNumerical, MethodGPU, MethodGPUTiled}

func TestSelectBandwidthContextPreCancelled(t *testing.T) {
	x, y := ctxSample(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range ctxMethods {
		sel, err := SelectBandwidthContext(ctx, x, y, WithMethod(m))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("method %v: err = %v, want context.Canceled", m, err)
		}
		if sel.Bandwidth != 0 || sel.CV != 0 || sel.Index != 0 || sel.Grid != nil || sel.Scores != nil {
			t.Errorf("method %v: cancelled selection leaked a partial result: %+v", m, sel)
		}
	}
}

func TestSelectBandwidthContextExpiredDeadline(t *testing.T) {
	x, y := ctxSample(64)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer cancel()
	for _, m := range ctxMethods {
		if _, err := SelectBandwidthContext(ctx, x, y, WithMethod(m)); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("method %v: err = %v, want context.DeadlineExceeded", m, err)
		}
	}
	// Estimator/criterion branches share the dispatch but have their own
	// entry points.
	if _, err := SelectBandwidthContext(ctx, x, y, WithEstimator(LocalLinear)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("local-linear: err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := SelectBandwidthContext(ctx, x, y, WithCriterion(CriterionAICc)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("aicc: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSelectBandwidthContextNilIsBackground(t *testing.T) {
	x, y := ctxSample(64)
	//lint:ignore SA1012 nil ctx is an explicit documented case here
	got, err := SelectBandwidthContext(nil, x, y) //nolint:staticcheck
	if err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	want, err := SelectBandwidth(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bandwidth != want.Bandwidth || got.CV != want.CV || got.Index != want.Index {
		t.Fatalf("nil-ctx selection %+v differs from SelectBandwidth %+v", got, want)
	}
}

func TestSelectBandwidthContextLiveCtxBitIdentical(t *testing.T) {
	x, y := ctxSample(128)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	for _, m := range ctxMethods {
		want, werr := SelectBandwidth(x, y, WithMethod(m), KeepScores())
		got, gerr := SelectBandwidthContext(ctx, x, y, WithMethod(m), KeepScores())
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("method %v: err mismatch %v vs %v", m, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if got.Bandwidth != want.Bandwidth || got.CV != want.CV || got.Index != want.Index {
			t.Errorf("method %v: live-ctx selection differs: %+v vs %+v", m, got, want)
		}
		for i := range want.Scores {
			// NaN scores (degenerate leave-one-out windows) compare by
			// bit pattern, not ==.
			if math.Float64bits(got.Scores[i]) != math.Float64bits(want.Scores[i]) {
				t.Errorf("method %v: score[%d] %v vs %v", m, i, got.Scores[i], want.Scores[i])
			}
		}
	}
}

// TestSelectBandwidthContextMidFlight cancels a context from a watcher
// goroutine while a deliberately slow naive search runs, and bounds how
// long the search keeps computing after that: observation-granularity
// polling must notice within seconds, not run the full search.
func TestSelectBandwidthContextMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("slow search not worth running under -short")
	}
	x, y := ctxSample(4000)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	sel, err := SelectBandwidthContext(ctx, x, y, WithMethod(MethodNaive), GridSize(256))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (elapsed %v)", err, elapsed)
	}
	if sel.Bandwidth != 0 || sel.CV != 0 || sel.Grid != nil || sel.Scores != nil {
		t.Fatalf("cancelled selection leaked a partial result: %+v", sel)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled search still ran for %v", elapsed)
	}
}
