package kernreg

import (
	"math"
	"strings"
	"testing"
)

// Error-path coverage for the public API: every malformed input must be
// rejected with a descriptive error before any selector runs, for every
// method, so the conformance fuzzer can treat "error or valid selection"
// as the full behaviour space.

func TestParseMethodRejectsUnknown(t *testing.T) {
	for _, bad := range []string{"", "gradient", "SORTED", "sorted ", "gpu2", "naïve"} {
		if _, err := ParseMethod(bad); err == nil {
			t.Errorf("ParseMethod(%q) accepted an unknown method", bad)
		} else if !strings.Contains(err.Error(), "unknown method") {
			t.Errorf("ParseMethod(%q) error %q lacks context", bad, err)
		}
	}
}

func TestParseMethodRoundTrips(t *testing.T) {
	for _, m := range []Method{MethodSorted, MethodSortedParallel, MethodSortedF32, MethodNaive, MethodNumerical, MethodGPU, MethodGPUTiled, MethodTwoPointer, MethodTwoPointerParallel, MethodTwoPointerF32, MethodBagged} {
		got, err := ParseMethod(m.String())
		if err != nil {
			t.Errorf("ParseMethod(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("ParseMethod(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if s := Method(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown method String() = %q, want the numeric fallback", s)
	}
}

// allMethods enumerates every search algorithm for the input-rejection
// sweep.
var allMethods = []Method{MethodSorted, MethodSortedParallel, MethodSortedF32, MethodNaive, MethodNumerical, MethodGPU, MethodGPUTiled, MethodTwoPointer, MethodTwoPointerParallel, MethodTwoPointerF32, MethodBagged}

func TestSelectBandwidthRejectsTooFewObservations(t *testing.T) {
	cases := map[string][2][]float64{
		"empty":     {{}, {}},
		"single":    {{0.5}, {1}},
		"nil-both":  {nil, nil},
		"nil-y":     {{0.1, 0.2}, nil},
		"len-skew":  {{0.1, 0.2, 0.3}, {1, 2}},
		"len-skew2": {{0.1, 0.2}, {1, 2, 3}},
	}
	for name, c := range cases {
		for _, m := range allMethods {
			if _, err := SelectBandwidth(c[0], c[1], WithMethod(m)); err == nil {
				t.Errorf("%s with method %v: accepted invalid sample", name, m)
			}
		}
	}
}

func TestSelectBandwidthRejectsNonFinite(t *testing.T) {
	x := []float64{0.1, 0.4, 0.7, 0.9}
	y := []float64{1, 2, 3, 4}
	poison := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, bad := range poison {
		for _, m := range allMethods {
			px := append([]float64(nil), x...)
			px[2] = bad
			if _, err := SelectBandwidth(px, y, WithMethod(m)); err == nil {
				t.Errorf("method %v accepted X containing %g", m, bad)
			}
			py := append([]float64(nil), y...)
			py[1] = bad
			if _, err := SelectBandwidth(x, py, WithMethod(m)); err == nil {
				t.Errorf("method %v accepted Y containing %g", m, bad)
			}
		}
	}
}

func TestSelectBandwidthRejectsBadOptions(t *testing.T) {
	x := []float64{0.1, 0.4, 0.7, 0.9}
	y := []float64{1, 2, 3, 4}
	bad := []Option{
		GridSize(0),
		GridSize(-3),
		GridRange(0, 1),
		GridRange(-1, 1),
		GridRange(2, 1),
		GridRange(1, 1),
		Restarts(0),
		WithKernel("box"),
	}
	for i, opt := range bad {
		if _, err := SelectBandwidth(x, y, opt); err == nil {
			t.Errorf("bad option %d accepted", i)
		}
	}
}

func TestSelectBandwidthRejectsZeroDomain(t *testing.T) {
	// All-identical X has no derivable default grid.
	x := []float64{0.5, 0.5, 0.5, 0.5}
	y := []float64{1, 2, 3, 4}
	if _, err := SelectBandwidth(x, y); err == nil {
		t.Error("accepted zero-domain X with the default grid")
	}
	// An explicit range sidesteps the default-grid derivation and must
	// still work (every observation is in range at any h).
	if _, err := SelectBandwidth(x, y, GridRange(0.5, 2)); err != nil {
		t.Errorf("explicit range on zero-domain X: %v", err)
	}
}

func TestSelectBandwidthMethodKernelMismatch(t *testing.T) {
	x := []float64{0.1, 0.4, 0.7, 0.9}
	y := []float64{1, 2, 3, 4}
	// The gaussian kernel has unbounded support: the sorted methods and
	// the device pipelines must reject it, the naive method accepts it.
	for _, m := range []Method{MethodSorted, MethodSortedParallel, MethodSortedF32, MethodGPU, MethodGPUTiled} {
		if _, err := SelectBandwidth(x, y, WithMethod(m), WithKernel("gaussian")); err == nil {
			t.Errorf("method %v accepted the gaussian kernel", m)
		}
	}
	if _, err := SelectBandwidth(x, y, WithMethod(MethodNaive), WithKernel("gaussian")); err != nil {
		t.Errorf("naive with gaussian: %v", err)
	}
}

func TestBaggedOptionErrors(t *testing.T) {
	x := []float64{0.1, 0.4, 0.7, 0.9}
	y := []float64{1, 2, 3, 4}
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"zero bags", []Option{WithMethod(MethodBagged), Bags(0)}, "bags must be at least 1, got 0"},
		{"negative bags", []Option{WithMethod(MethodBagged), Bags(-2)}, "bags must be at least 1, got -2"},
		{"bag size one", []Option{WithMethod(MethodBagged), BagSize(1)}, "bag size must be at least 2, got 1"},
		{"bag size zero", []Option{WithMethod(MethodBagged), BagSize(0)}, "bag size must be at least 2, got 0"},
		{"bag size over n", []Option{WithMethod(MethodBagged), BagSize(5)}, "bag size 5 exceeds the sample size 4"},
		{"negative seed", []Option{WithMethod(MethodBagged), Seed(-1)}, "seed must be non-negative, got -1"},
		{"bags on sorted", []Option{WithMethod(MethodSorted), Bags(4)}, "apply to MethodBagged only"},
		{"bag size on default method", []Option{BagSize(3)}, "apply to MethodBagged only"},
		{"seed on naive", []Option{WithMethod(MethodNaive), Seed(7)}, "apply to MethodBagged only"},
		{"gaussian kernel", []Option{WithMethod(MethodBagged), WithKernel("gaussian")}, "kernel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := SelectBandwidth(x, y, tc.opts...)
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q lacks %q", err, tc.want)
			}
		})
	}
	// Valid bag parameters on the bagged method select successfully.
	if _, err := SelectBandwidth(x, y, WithMethod(MethodBagged), Bags(3), BagSize(3), Seed(5)); err != nil {
		t.Fatalf("valid bagged options: %v", err)
	}
}

func TestWorkersRejectsNegative(t *testing.T) {
	x := []float64{0.1, 0.4, 0.7, 0.9}
	y := []float64{1, 2, 3, 4}
	for _, n := range []int{-1, -8, math.MinInt} {
		_, err := SelectBandwidth(x, y, WithMethod(MethodSortedParallel), Workers(n))
		if err == nil {
			t.Errorf("Workers(%d) accepted a negative worker count", n)
			continue
		}
		if !strings.Contains(err.Error(), "non-negative") {
			t.Errorf("Workers(%d) error %q lacks context", n, err)
		}
	}
	// 0 (auto) and explicit positive counts remain valid.
	for _, n := range []int{0, 1, 2, 8} {
		if _, err := SelectBandwidth(x, y, WithMethod(MethodSortedParallel), Workers(n)); err != nil {
			t.Errorf("Workers(%d): %v", n, err)
		}
	}
}
