package kernreg_test

import (
	"fmt"

	"repro/internal/data"
	"repro/kernreg"
)

// ExampleSelectBandwidth reproduces the library's core loop: generate the
// paper's synthetic data, select the CV-optimal bandwidth with the sorted
// fast grid search, and fit the regression.
func ExampleSelectBandwidth() {
	d := data.GeneratePaper(500, 42)
	sel, err := kernreg.SelectBandwidth(d.X, d.Y, kernreg.GridSize(50))
	if err != nil {
		panic(err)
	}
	fmt.Printf("grid index %d of %d\n", sel.Index, len(sel.Grid))
	fmt.Printf("bandwidth %.4f\n", sel.Bandwidth)
	// Output:
	// grid index 0 of 50
	// bandwidth 0.0199
}

// ExampleSelectBandwidth_methods shows that every search method lands on
// the same grid point.
func ExampleSelectBandwidth_methods() {
	d := data.GeneratePaper(300, 7)
	for _, m := range []kernreg.Method{
		kernreg.MethodSorted, kernreg.MethodNaive, kernreg.MethodSortedF32, kernreg.MethodGPU,
	} {
		sel, err := kernreg.SelectBandwidth(d.X, d.Y, kernreg.WithMethod(m), kernreg.GridSize(25))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s index %d\n", sel.Method, sel.Index)
	}
	// Output:
	// sorted     index 0
	// naive      index 0
	// sorted-f32 index 0
	// gpu        index 0
}

// ExampleFit predicts the conditional mean at a point and compares the
// estimator family.
func ExampleFit() {
	d := data.GeneratePaper(2000, 42)
	reg, err := kernreg.Fit(d.X, d.Y, 0.05)
	if err != nil {
		panic(err)
	}
	nw, _ := reg.Predict(0.5)
	ll, _ := reg.PredictLocalLinear(0.5)
	fmt.Printf("truth          %.2f\n", data.Paper.TrueMean(0.5))
	fmt.Printf("local constant %.2f\n", nw)
	fmt.Printf("local linear   %.2f\n", ll)
	// Output:
	// truth          3.00
	// local constant 3.01
	// local linear   3.01
}

// ExampleSelectDensityBandwidth selects a KDE bandwidth by least-squares
// cross-validation with the paper's sorted-grid technique.
func ExampleSelectDensityBandwidth() {
	d := data.GeneratePaper(400, 42)
	sel, err := kernreg.SelectDensityBandwidth(d.X, 50)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rule %s, bandwidth %.3f\n", sel.Rule, sel.Bandwidth)
	// Output:
	// rule lscv, bandwidth 0.080
}
