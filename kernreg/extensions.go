package kernreg

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/kde"
	"repro/internal/kernel"
	"repro/internal/mvreg"
)

// Criterion selects the model-selection objective, mirroring np's
// bwmethod argument.
type Criterion int

const (
	// CriterionCV is least-squares leave-one-out cross-validation
	// (np bwmethod="cv.ls") — the paper's objective and the default.
	CriterionCV Criterion = iota
	// CriterionAICc is the corrected-AIC criterion of Hurvich, Simonoff
	// & Tsai (np bwmethod="cv.aic").
	CriterionAICc
)

// String returns the np-style name.
func (c Criterion) String() string {
	switch c {
	case CriterionCV:
		return "cv.ls"
	case CriterionAICc:
		return "cv.aic"
	default:
		return fmt.Sprintf("kernreg.Criterion(%d)", int(c))
	}
}

// WithCriterion selects the model-selection objective. CriterionAICc is
// supported by MethodSorted (Epanechnikov) and MethodNaive (any kernel),
// for the local-constant estimator.
func WithCriterion(c Criterion) Option {
	return func(cfg *config) error {
		cfg.criterion = c
		return nil
	}
}

// selectAICc handles the CriterionAICc branch of SelectBandwidth. The
// AICc searches have no context-aware variants yet, so cancellation is
// honoured at entry only.
func selectAICc(ctx context.Context, x, y []float64, c config) (Selection, error) {
	g, err := buildGrid(x, c)
	if err != nil {
		return Selection{}, err
	}
	if err := ctx.Err(); err != nil {
		return Selection{}, err
	}
	var r bandwidth.Result
	switch c.method {
	case MethodSorted:
		if c.kern != kernel.Epanechnikov {
			return Selection{}, errors.New("kernreg: sorted AICc search supports the epanechnikov kernel only")
		}
		r, err = bandwidth.SortedGridSearchAICc(x, y, g)
	case MethodNaive:
		r, err = bandwidth.NaiveGridSearchAICc(x, y, g, c.kern)
	default:
		return Selection{}, fmt.Errorf("kernreg: method %v does not support the AICc criterion", c.method)
	}
	if err != nil {
		return Selection{}, err
	}
	sel := Selection{
		Bandwidth: r.H,
		CV:        r.CV, // the criterion value (AICc, not a squared error)
		Index:     r.Index,
		Grid:      append([]float64(nil), g.H...),
		Method:    c.method,
	}
	if c.keepScores {
		sel.Scores = r.Scores
	}
	return sel, nil
}

// Estimator selects the regression type the CV objective targets,
// mirroring the R np package's regtype argument.
type Estimator int

const (
	// LocalConstant is the Nadaraya–Watson estimator (np regtype="lc"),
	// the paper's target and the default.
	LocalConstant Estimator = iota
	// LocalLinear is the local-linear estimator (np regtype="ll"); its
	// CV objective also admits the sorted incremental grid search.
	LocalLinear
)

// String returns the np-style name.
func (e Estimator) String() string {
	switch e {
	case LocalConstant:
		return "lc"
	case LocalLinear:
		return "ll"
	default:
		return fmt.Sprintf("kernreg.Estimator(%d)", int(e))
	}
}

// WithEstimator selects the regression type for SelectBandwidth.
// LocalLinear is supported by MethodSorted (Epanechnikov) and MethodNaive
// (any kernel).
func WithEstimator(e Estimator) Option {
	return func(c *config) error {
		c.estimator = e
		return nil
	}
}

// selectLocalLinear handles the LocalLinear branch of SelectBandwidth.
func selectLocalLinear(ctx context.Context, x, y []float64, c config) (Selection, error) {
	g, err := buildGrid(x, c)
	if err != nil {
		return Selection{}, err
	}
	var r bandwidth.Result
	switch c.method {
	case MethodSorted:
		if c.kern != kernel.Epanechnikov {
			return Selection{}, errors.New("kernreg: sorted local-linear search supports the epanechnikov kernel only")
		}
		r, err = bandwidth.SortedGridSearchLocalLinearStabilityContext(ctx, x, y, g, c.stability())
	case MethodNaive:
		r, err = bandwidth.NaiveGridSearchLocalLinearContext(ctx, x, y, g, c.kern)
	case MethodTwoPointer:
		if c.kern != kernel.Epanechnikov {
			return Selection{}, errors.New("kernreg: two-pointer local-linear search supports the epanechnikov kernel only")
		}
		r, err = bandwidth.TwoPointerGridSearchLocalLinearStabilityContext(ctx, x, y, g, c.stability())
	default:
		return Selection{}, fmt.Errorf("kernreg: method %v does not support the local-linear estimator", c.method)
	}
	if err != nil {
		return Selection{}, err
	}
	sel := Selection{
		Bandwidth: r.H,
		CV:        r.CV,
		Index:     r.Index,
		Grid:      append([]float64(nil), g.H...),
		Method:    c.method,
	}
	if c.keepScores {
		sel.Scores = r.Scores
	}
	return sel, nil
}

// MVSelection is a multivariate bandwidth selection.
type MVSelection struct {
	Bandwidths []float64
	CV         float64
	Evals      int
	Sweeps     int
}

// SelectBandwidthMV selects a bandwidth vector for a multivariate kernel
// regression of y on the rows of x by leave-one-out cross-validation with
// a product Epanechnikov kernel. With mesh=true the full Cartesian grid
// (k points per dimension) is searched exactly by the fast-sum-updating
// mesh sweep; otherwise coordinate descent over the same sweep is used,
// which scales to higher dimensions. k ≤ 0 defaults to 20 per dimension.
func SelectBandwidthMV(x [][]float64, y []float64, k int, mesh bool) (MVSelection, error) {
	return SelectBandwidthMVContext(context.Background(), x, y, k, mesh)
}

// SelectBandwidthMVContext is SelectBandwidthMV with cooperative
// cancellation, polled at sweep granularity inside the searches.
func SelectBandwidthMVContext(ctx context.Context, x [][]float64, y []float64, k int, mesh bool) (MVSelection, error) {
	s := mvreg.Sample{X: x, Y: y}
	if k <= 0 {
		k = 20
	}
	grids, err := mvreg.DefaultGrids(s, k)
	if err != nil {
		return MVSelection{}, err
	}
	var r mvreg.Result
	if mesh {
		r, err = mvreg.MeshSearchContext(ctx, s, grids, kernel.Epanechnikov)
	} else {
		r, err = mvreg.CoordinateDescentContext(ctx, s, grids, 0)
	}
	if err != nil {
		return MVSelection{}, err
	}
	return MVSelection{Bandwidths: r.H, CV: r.CV, Evals: r.Evals, Sweeps: r.Sweeps}, nil
}

// ErrDimension is returned (wrapped) by MVRegression.Predict when the
// query point's coordinate count differs from the fitted model's
// dimensionality. Test with errors.Is.
var ErrDimension = mvreg.ErrDimension

// MVRegression is a fitted multivariate kernel regression.
type MVRegression struct {
	m *mvreg.Model
}

// FitMV constructs a multivariate product-kernel regression with the
// given bandwidth vector (Epanechnikov kernel).
func FitMV(x [][]float64, y []float64, h []float64) (*MVRegression, error) {
	m, err := mvreg.New(mvreg.Sample{X: x, Y: y}, h, kernel.Epanechnikov)
	if err != nil {
		return nil, err
	}
	return &MVRegression{m: m}, nil
}

// Predict returns the estimate at the point x0; ok is false when no
// observation carries weight there. A query point whose dimensionality
// disagrees with the model's returns an error.
func (r *MVRegression) Predict(x0 []float64) (float64, bool, error) { return r.m.Predict(x0) }

// Bandwidths returns the model's bandwidth vector.
func (r *MVRegression) Bandwidths() []float64 {
	return append([]float64(nil), r.m.H...)
}

// SelectDensityBandwidthGPU selects the KDE bandwidth by least-squares
// cross-validation executed on the simulated GPU — the paper's KDE
// extension mapped onto its device pipeline. k ≤ 0 defaults to 50.
// Device capacity limits apply (k ≤ 2,048; one n×n scratch matrix).
func SelectDensityBandwidthGPU(x []float64, k int) (DensitySelection, error) {
	if k <= 0 {
		k = 50
	}
	if len(x) < 2 {
		return DensitySelection{}, kde.ErrSample
	}
	min, max := minMax(x)
	domain := max - min
	if !(domain > 0) {
		return DensitySelection{}, errors.New("kernreg: sample has zero domain")
	}
	grid := make([]float64, k)
	for j := 1; j <= k; j++ {
		grid[j-1] = domain * float64(j) / float64(k)
	}
	res, _, err := core.SelectKDEGPU(x, grid, core.GPUOptions{})
	if err != nil {
		return DensitySelection{}, err
	}
	return DensitySelection{Bandwidth: res.H, Score: res.Score, Rule: "lscv-gpu"}, nil
}

func minMax(xs []float64) (float64, float64) {
	min, max := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}
