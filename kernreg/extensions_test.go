package kernreg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
)

func TestLocalLinearEstimatorOption(t *testing.T) {
	x, y := paperData(200, 21)
	ll, err := SelectBandwidth(x, y, WithEstimator(LocalLinear), GridSize(30), KeepScores())
	if err != nil {
		t.Fatal(err)
	}
	if ll.Bandwidth <= 0 || len(ll.Scores) != 30 {
		t.Errorf("local-linear selection = %+v", ll)
	}
	// Naive path agrees with the sorted path.
	naive, err := SelectBandwidth(x, y, WithEstimator(LocalLinear), WithMethod(MethodNaive), GridSize(30))
	if err != nil {
		t.Fatal(err)
	}
	if naive.Index != ll.Index {
		t.Errorf("ll naive index %d vs sorted %d", naive.Index, ll.Index)
	}
	// Unsupported combinations fail loudly.
	if _, err := SelectBandwidth(x, y, WithEstimator(LocalLinear), WithMethod(MethodGPU)); err == nil {
		t.Error("ll + gpu should be rejected")
	}
	if _, err := SelectBandwidth(x, y, WithEstimator(LocalLinear), WithKernel("gaussian")); err == nil {
		t.Error("ll + sorted + gaussian should be rejected")
	}
	if _, err := SelectBandwidth(x, y, WithEstimator(LocalLinear), WithKernel("gaussian"), WithMethod(MethodNaive)); err != nil {
		t.Errorf("ll + naive + gaussian should work: %v", err)
	}
}

func TestEstimatorString(t *testing.T) {
	if LocalConstant.String() != "lc" || LocalLinear.String() != "ll" {
		t.Error("estimator names wrong")
	}
	if Estimator(7).String() == "" {
		t.Error("unknown estimator should stringify")
	}
}

func mvSample(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x[i] = []float64{a, b}
		y[i] = a*a + b + 0.15*rng.NormFloat64()
	}
	return x, y
}

func TestSelectBandwidthMV(t *testing.T) {
	x, y := mvSample(150, 5)
	cd, err := SelectBandwidthMV(x, y, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cd.Bandwidths) != 2 || cd.Sweeps < 1 {
		t.Errorf("coordinate descent = %+v", cd)
	}
	mesh, err := SelectBandwidthMV(x, y, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Evals != 100 {
		t.Errorf("mesh evals = %d, want 100", mesh.Evals)
	}
	if cd.CV > mesh.CV*1.05 {
		t.Errorf("descent CV %v far above mesh %v", cd.CV, mesh.CV)
	}
	// Defaults.
	if _, err := SelectBandwidthMV(x, y, 0, false); err != nil {
		t.Errorf("default k: %v", err)
	}
	// Validation.
	if _, err := SelectBandwidthMV([][]float64{{1, 2}}, []float64{1}, 5, false); err == nil {
		t.Error("single observation should fail")
	}
}

func TestFitMVPredict(t *testing.T) {
	x, y := mvSample(2000, 9)
	reg, err := FitMV(x, y, []float64{0.15, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := reg.Predict([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25 + 0.5
	if !ok || math.Abs(got-want) > 0.12 {
		t.Errorf("MV prediction = %v, want ≈ %v", got, want)
	}
	if _, _, err := reg.Predict([]float64{0.5}); !errors.Is(err, ErrDimension) {
		t.Errorf("dimension mismatch = %v, want errors.Is(err, ErrDimension)", err)
	}
	hs := reg.Bandwidths()
	hs[0] = 99
	if h2 := reg.Bandwidths(); h2[0] == 99 {
		t.Error("Bandwidths should return a copy")
	}
	if _, err := FitMV(x, y, []float64{0.1}); err == nil {
		t.Error("bandwidth count mismatch should fail")
	}
}

func TestSelectDensityBandwidthGPU(t *testing.T) {
	d := data.GeneratePaper(300, 31)
	gpuSel, err := SelectDensityBandwidthGPU(d.X, 40)
	if err != nil {
		t.Fatal(err)
	}
	if gpuSel.Rule != "lscv-gpu" || gpuSel.Bandwidth <= 0 {
		t.Errorf("gpu density selection = %+v", gpuSel)
	}
	host, err := SelectDensityBandwidth(d.X, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Device float32 vs host float64: same grid, same criterion — the
	// selected bandwidths should be the same grid point or neighbours.
	if math.Abs(gpuSel.Bandwidth-host.Bandwidth) > 2*host.Bandwidth/40+1e-9 {
		t.Errorf("gpu h = %v vs host h = %v", gpuSel.Bandwidth, host.Bandwidth)
	}
	// Validation.
	if _, err := SelectDensityBandwidthGPU([]float64{1}, 10); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := SelectDensityBandwidthGPU([]float64{1, 1, 1}, 10); err == nil {
		t.Error("zero-domain sample should fail")
	}
	if _, err := SelectDensityBandwidthGPU(d.X, 2049); err == nil {
		t.Error("k=2049 should hit the device constant-cache cap")
	}
}

func TestAICcCriterion(t *testing.T) {
	x, y := paperData(250, 23)
	sorted, err := SelectBandwidth(x, y, WithCriterion(CriterionAICc), GridSize(30), KeepScores())
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SelectBandwidth(x, y, WithCriterion(CriterionAICc), WithMethod(MethodNaive), GridSize(30))
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Index != naive.Index {
		t.Errorf("AICc sorted %d vs naive %d", sorted.Index, naive.Index)
	}
	if len(sorted.Scores) != 30 {
		t.Error("scores missing")
	}
	// AICc and CV selections should be in the same neighbourhood.
	cv, err := SelectBandwidth(x, y, GridSize(30))
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Bandwidth > cv.Bandwidth*5 || sorted.Bandwidth < cv.Bandwidth/5 {
		t.Errorf("AICc h = %v far from CV h = %v", sorted.Bandwidth, cv.Bandwidth)
	}
	// Unsupported combinations.
	if _, err := SelectBandwidth(x, y, WithCriterion(CriterionAICc), WithMethod(MethodGPU)); err == nil {
		t.Error("AICc + gpu should be rejected")
	}
	if _, err := SelectBandwidth(x, y, WithCriterion(CriterionAICc), WithEstimator(LocalLinear)); err == nil {
		t.Error("AICc + ll should be rejected")
	}
	if _, err := SelectBandwidth(x, y, WithCriterion(CriterionAICc), WithKernel("gaussian"), WithMethod(MethodNaive)); err != nil {
		t.Errorf("AICc + naive + gaussian should work: %v", err)
	}
	if CriterionCV.String() != "cv.ls" || CriterionAICc.String() != "cv.aic" || Criterion(9).String() == "" {
		t.Error("criterion names wrong")
	}
}

func TestDerivativeAPI(t *testing.T) {
	d := data.GeneratePaper(3000, 29)
	reg, err := Fit(d.X, d.Y, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reg.Derivative(0.5)
	want := 0.5 + 20*0.5 // d/dx of 0.5x + 10x²
	if !ok || math.Abs(got-want) > 2 {
		t.Errorf("marginal effect at 0.5 = %v, want ≈ %v", got, want)
	}
}
