package kernreg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/wire"
)

// Dataset-fingerprint keys for result caching. At cluster scale the
// common case is repeated selection over the same (X, Y, grid, options)
// tuple, so the coordinator caches results keyed by a canonical hash of
// the job. Two requirements shape the serialization:
//
//   - injectivity: distinct jobs must serialize to distinct byte
//     strings, so every variable-length field is length-prefixed and
//     the field order is fixed — no concatenation ambiguity between X
//     and Y, no method/kernel string bleeding into the data;
//   - bit-sensitivity: floats are serialized as IEEE-754 bit patterns,
//     so -0 and +0, or two NaN payloads, key differently — matching
//     the bit-identity contract of the selectors themselves.
//
// The layout is versioned by the leading magic; any change to the
// canonical form must bump it so stale cache entries can never alias a
// new job shape.

// fingerprintMagic versions the canonical serialization.
const fingerprintMagic = "krfp1\x00"

// Fingerprint is the SHA-256 of a selection job's canonical form.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// AppendCanonicalSelect appends the canonical serialization of a
// selection job to dst and returns the extended slice:
//
//	magic | flags | lp(method) | lp(kernel) | lpf(x) | lpf(y) | lpf(grid)
//
// where lp is a u64 little-endian byte-length prefix, lpf a u64
// element-count prefix followed by each float64's little-endian bits,
// and flags packs stable (bit 0) and keepScores (bit 1).
func AppendCanonicalSelect(dst []byte, x, y, grid []float64, method Method, kernelName string, stable, keepScores bool) []byte {
	dst = append(dst, fingerprintMagic...)
	var flags byte
	if stable {
		flags |= 1
	}
	if keepScores {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = appendLPString(dst, method.String())
	dst = appendLPString(dst, kernelName)
	dst = appendLPFloats(dst, x)
	dst = appendLPFloats(dst, y)
	return appendLPFloats(dst, grid)
}

// FingerprintSelect hashes the canonical serialization of a selection
// job. Equal jobs produce byte-identical fingerprints on every
// architecture and run; any difference in data bits, grid, method,
// kernel or options produces a different canonical form.
func FingerprintSelect(x, y, grid []float64, method Method, kernelName string, stable, keepScores bool) Fingerprint {
	buf := make([]byte, 0, len(fingerprintMagic)+1+16+len(kernelName)+16+8*(len(x)+len(y)+len(grid))+24)
	buf = AppendCanonicalSelect(buf, x, y, grid, method, kernelName, stable, keepScores)
	return sha256.Sum256(buf)
}

func appendLPString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendLPFloats(dst []byte, vs []float64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = wire.AppendFloat64LE(dst, v)
	}
	return dst
}
