package kernreg

import (
	"bytes"
	"math"
	"testing"
)

func fpBase() ([]float64, []float64, []float64) {
	x := []float64{0.1, 0.35, 0.5, 0.62, 0.81, 0.93}
	y := []float64{1.2, 0.7, 0.1, -0.2, -0.9, -1.3}
	g := []float64{0.1, 0.2, 0.4, 0.8}
	return x, y, g
}

func TestFingerprintDeterministic(t *testing.T) {
	x, y, g := fpBase()
	a := FingerprintSelect(x, y, g, MethodTwoPointer, "epanechnikov", true, false)
	b := FingerprintSelect(x, y, g, MethodTwoPointer, "epanechnikov", true, false)
	if a != b {
		t.Fatalf("identical jobs fingerprint differently: %s vs %s", a, b)
	}
	// Byte-identical canonical forms, not just equal hashes.
	ca := AppendCanonicalSelect(nil, x, y, g, MethodTwoPointer, "epanechnikov", true, false)
	cb := AppendCanonicalSelect(nil, x, y, g, MethodTwoPointer, "epanechnikov", true, false)
	if !bytes.Equal(ca, cb) {
		t.Fatal("identical jobs serialize differently")
	}
}

// TestFingerprintDistinguishes drives every field through a mutation and
// requires a distinct key — the collision-resistance sanity battery: a
// cache keyed by these fingerprints must never serve one job's result
// for another.
func TestFingerprintDistinguishes(t *testing.T) {
	x, y, g := fpBase()
	base := FingerprintSelect(x, y, g, MethodTwoPointer, "epanechnikov", true, false)

	mutations := map[string]Fingerprint{}

	// Permuted X (same multiset of values).
	px := append([]float64(nil), x...)
	px[0], px[1] = px[1], px[0]
	mutations["permuted x"] = FingerprintSelect(px, y, g, MethodTwoPointer, "epanechnikov", true, false)

	// Sign-flipped Y.
	fy := make([]float64, len(y))
	for i, v := range y {
		fy[i] = -v
	}
	mutations["flipped y"] = FingerprintSelect(x, fy, g, MethodTwoPointer, "epanechnikov", true, false)

	// One ULP in one X value.
	ux := append([]float64(nil), x...)
	ux[3] = math.Nextafter(ux[3], 2)
	mutations["one-ulp x"] = FingerprintSelect(ux, y, g, MethodTwoPointer, "epanechnikov", true, false)

	// Negative zero vs positive zero (bit-sensitivity).
	zx := append([]float64(nil), x...)
	zx[0] = 0
	nx := append([]float64(nil), x...)
	nx[0] = math.Copysign(0, -1)
	if FingerprintSelect(zx, y, g, MethodTwoPointer, "epanechnikov", true, false) ==
		FingerprintSelect(nx, y, g, MethodTwoPointer, "epanechnikov", true, false) {
		t.Error("+0 and -0 in X key identically")
	}

	// Different grid, method, kernel, and each option flag.
	g2 := append([]float64(nil), g...)
	g2[len(g2)-1] *= 2
	mutations["grid"] = FingerprintSelect(x, y, g2, MethodTwoPointer, "epanechnikov", true, false)
	mutations["method"] = FingerprintSelect(x, y, g, MethodSorted, "epanechnikov", true, false)
	mutations["kernel"] = FingerprintSelect(x, y, g, MethodTwoPointer, "uniform", true, false)
	mutations["stable"] = FingerprintSelect(x, y, g, MethodTwoPointer, "epanechnikov", false, false)
	mutations["keep-scores"] = FingerprintSelect(x, y, g, MethodTwoPointer, "epanechnikov", true, true)

	// An element moved across the X/Y boundary: lengths shift but the
	// concatenated float stream is identical, so only the length
	// prefixes separate the jobs.
	xs := append(append([]float64(nil), x...), y[0])
	ys := append([]float64(nil), y[1:]...)
	mutations["x/y boundary"] = FingerprintSelect(xs, ys, g, MethodTwoPointer, "epanechnikov", true, false)

	seen := map[Fingerprint]string{base: "base"}
	for name, fp := range mutations {
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s: %s", name, prev, fp)
		}
		seen[fp] = name
	}
}

// FuzzFingerprintCanonical feeds arbitrary job shapes through the
// canonical serialization and checks the structural properties the
// cache depends on: determinism, dst-append transparency, and that
// flipping any single data bit changes the canonical form.
func FuzzFingerprintCanonical(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{9, 10}, []byte{11}, byte(0), true, false)
	f.Add([]byte{}, []byte{0xff, 0xfe}, []byte{}, byte(7), false, true)
	f.Fuzz(func(t *testing.T, xb, yb, gb []byte, methodByte byte, stable, keepScores bool) {
		x := bytesToFloats(xb)
		y := bytesToFloats(yb)
		g := bytesToFloats(gb)
		method := Method(int(methodByte) % int(MethodBagged+1))

		c1 := AppendCanonicalSelect(nil, x, y, g, method, "epanechnikov", stable, keepScores)
		c2 := AppendCanonicalSelect(nil, x, y, g, method, "epanechnikov", stable, keepScores)
		if !bytes.Equal(c1, c2) {
			t.Fatal("canonical form is not deterministic")
		}
		if FingerprintSelect(x, y, g, method, "epanechnikov", stable, keepScores) !=
			FingerprintSelect(x, y, g, method, "epanechnikov", stable, keepScores) {
			t.Fatal("fingerprint is not deterministic")
		}

		// Appending to a non-empty dst must only prepend the prefix.
		withPrefix := AppendCanonicalSelect([]byte("prefix"), x, y, g, method, "epanechnikov", stable, keepScores)
		if !bytes.Equal(withPrefix, append([]byte("prefix"), c1...)) {
			t.Fatal("AppendCanonicalSelect is not append-transparent")
		}

		// Any single-bit mutation of X must change the serialization.
		if len(x) > 0 {
			mx := append([]float64(nil), x...)
			mx[0] = math.Float64frombits(math.Float64bits(mx[0]) ^ 1)
			if bytes.Equal(c1, AppendCanonicalSelect(nil, mx, y, g, method, "epanechnikov", stable, keepScores)) {
				t.Fatal("bit flip in X left the canonical form unchanged")
			}
		}
	})
}

// bytesToFloats builds a float slice from fuzz bytes, eight bytes per
// value (truncating the tail).
func bytesToFloats(b []byte) []float64 {
	out := make([]float64, 0, len(b)/8)
	for len(b) >= 8 {
		var u uint64
		for i := 0; i < 8; i++ {
			u = u<<8 | uint64(b[i])
		}
		out = append(out, math.Float64frombits(u))
		b = b[8:]
	}
	return out
}
