package kernreg_test

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/conformance"
	"repro/kernreg"
)

// FuzzSelectBandwidth throws arbitrary byte-decoded samples at every
// public method and checks the API contract: either a descriptive error,
// or a selection whose bandwidth is a finite positive member of the
// reported grid with a score that is the minimum of the reported score
// vector. Seeds come from the conformance corpus so the fuzzer starts
// from the adversarial shapes (duplicates, constant Y, n=2) rather than
// random noise.

var fuzzMethods = []kernreg.Method{
	kernreg.MethodSorted,
	kernreg.MethodSortedParallel,
	kernreg.MethodSortedF32,
	kernreg.MethodNaive,
	kernreg.MethodNumerical,
	kernreg.MethodGPU,
	kernreg.MethodGPUTiled,
	kernreg.MethodTwoPointer,
	kernreg.MethodTwoPointerParallel,
	kernreg.MethodTwoPointerF32,
	kernreg.MethodBagged,
}

// encodeSample packs up to max (x, y) pairs as little-endian float64
// bits, the wire format both fuzz targets share.
func encodeSample(x, y []float64, max int) []byte {
	n := len(x)
	if n > max {
		n = max
	}
	out := make([]byte, 0, 16*n)
	var b [8]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x[i]))
		out = append(out, b[:]...)
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(y[i]))
		out = append(out, b[:]...)
	}
	return out
}

func decodeSample(data []byte, max int) (x, y []float64) {
	n := len(data) / 16
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		x = append(x, math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:])))
		y = append(y, math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:])))
	}
	return x, y
}

// FuzzBaggedSelect drives MethodBagged with fuzzed bag parameters: the
// contract is a descriptive error (bad bag size for the sample) or a
// selection whose bandwidth is finite positive — a grid point when the
// run degenerated to the exact sweep (m == n), otherwise a continuum
// value in (0, grid max]. Every accepted selection must reproduce bit
// for bit on a second call: determinism is part of the bagged API.
func FuzzBaggedSelect(f *testing.F) {
	for _, d := range conformance.Corpus() {
		if d.Heavy {
			continue
		}
		f.Add(encodeSample(d.X, d.Y, 64), uint8(d.K), uint8(len(d.X)/2), uint8(0))
	}
	f.Fuzz(func(t *testing.T, data []byte, rByte, mByte, seedByte uint8) {
		x, y := decodeSample(data, 64)
		bags := 1 + int(rByte)%8
		// The bag size ranges past n so the fuzzer also exercises the
		// "bag size exceeds the sample size" rejection.
		bagSize := 2 + int(mByte)%96
		seed := int64(seedByte)
		opts := []kernreg.Option{
			kernreg.WithMethod(kernreg.MethodBagged), kernreg.GridSize(16),
			kernreg.Bags(bags), kernreg.BagSize(bagSize), kernreg.Seed(seed),
		}
		sel, err := kernreg.SelectBandwidth(x, y, opts...)
		if err != nil {
			return // rejection is within contract; no selection to check
		}
		if !(sel.Bandwidth > 0) || math.IsInf(sel.Bandwidth, 0) || math.IsNaN(sel.Bandwidth) {
			t.Fatalf("bags=%d m=%d: bandwidth %g is not finite positive", bags, bagSize, sel.Bandwidth)
		}
		if sel.Index >= 0 {
			// Degenerate m == n path: an exact grid selection.
			if sel.Index >= len(sel.Grid) || sel.Bandwidth != sel.Grid[sel.Index] {
				t.Fatalf("degenerate bagged bandwidth %g is not the grid point at index %d", sel.Bandwidth, sel.Index)
			}
		} else {
			if sel.Index != -1 || sel.Bandwidth > sel.Grid[len(sel.Grid)-1] {
				t.Fatalf("bagged index %d, bandwidth %g vs grid max %g", sel.Index, sel.Bandwidth, sel.Grid[len(sel.Grid)-1])
			}
		}
		again, err := kernreg.SelectBandwidth(x, y, opts...)
		if err != nil {
			t.Fatalf("second call errored after a successful first: %v", err)
		}
		// Bit comparison: a degenerate sample can legally yield a NaN CV,
		// which must still reproduce exactly.
		if math.Float64bits(again.Bandwidth) != math.Float64bits(sel.Bandwidth) ||
			math.Float64bits(again.CV) != math.Float64bits(sel.CV) || again.Index != sel.Index {
			t.Fatalf("bagged selection is not deterministic: (%g, %g, %d) vs (%g, %g, %d)",
				sel.Bandwidth, sel.CV, sel.Index, again.Bandwidth, again.CV, again.Index)
		}
	})
}

func FuzzSelectBandwidth(f *testing.F) {
	for _, d := range conformance.Corpus() {
		if d.Heavy {
			continue
		}
		f.Add(encodeSample(d.X, d.Y, 64), uint8(d.K), uint8(0))
	}
	f.Fuzz(func(t *testing.T, data []byte, kByte, methodByte uint8) {
		x, y := decodeSample(data, 64)
		k := 1 + int(kByte)%32
		m := fuzzMethods[int(methodByte)%len(fuzzMethods)]
		sel, err := kernreg.SelectBandwidth(x, y,
			kernreg.WithMethod(m), kernreg.GridSize(k), kernreg.KeepScores())
		if err != nil {
			return // rejection is within contract; no selection to check
		}
		if !(sel.Bandwidth > 0) || math.IsInf(sel.Bandwidth, 0) || math.IsNaN(sel.Bandwidth) {
			t.Fatalf("method %v: bandwidth %g is not finite positive", m, sel.Bandwidth)
		}
		if m == kernreg.MethodNumerical {
			if sel.Index != -1 || sel.Grid != nil {
				t.Fatalf("numerical selection reports grid artifacts: index %d grid %v", sel.Index, sel.Grid)
			}
			return
		}
		if m == kernreg.MethodBagged && sel.Index == -1 {
			// Non-degenerate bagged path: the rescaled bag mean is a
			// continuum value bounded by the grid maximum, with no scores.
			if sel.Bandwidth > sel.Grid[len(sel.Grid)-1] || len(sel.Scores) != 0 {
				t.Fatalf("bagged bandwidth %g exceeds grid max %g or carries %d scores",
					sel.Bandwidth, sel.Grid[len(sel.Grid)-1], len(sel.Scores))
			}
			return
		}
		if sel.Index < 0 || sel.Index >= len(sel.Grid) {
			t.Fatalf("method %v: index %d outside grid of %d", m, sel.Index, len(sel.Grid))
		}
		h64 := sel.Grid[sel.Index]
		if h32 := float64(float32(h64)); sel.Bandwidth != h64 && sel.Bandwidth != h32 {
			t.Fatalf("method %v: bandwidth %g is neither grid point %g nor its float32 image %g",
				m, sel.Bandwidth, h64, h32)
		}
		if len(sel.Scores) != len(sel.Grid) {
			t.Fatalf("method %v: %d scores for %d grid points", m, len(sel.Scores), len(sel.Grid))
		}
		for j, s := range sel.Scores {
			if !math.IsNaN(s) && s < sel.CV {
				t.Fatalf("method %v: score %g at index %d beats reported CV %g at index %d",
					m, s, j, sel.CV, sel.Index)
			}
		}
	})
}
