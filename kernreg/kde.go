package kernreg

import (
	"fmt"

	"repro/internal/kde"
	"repro/internal/kernel"
)

// Density is a fitted kernel density estimate.
type Density struct {
	d *kde.Density
}

// NewDensity constructs a kernel density estimate of the sample x with
// bandwidth h and the named kernel.
func NewDensity(x []float64, h float64, kernelName string) (*Density, error) {
	k, err := kernel.Parse(kernelName)
	if err != nil {
		return nil, err
	}
	d, err := kde.New(x, h, k)
	if err != nil {
		return nil, err
	}
	return &Density{d: d}, nil
}

// At returns the density estimate at x0.
func (d *Density) At(x0 float64) float64 { return d.d.At(x0) }

// Grid evaluates the density at each point of xs.
func (d *Density) Grid(xs []float64) []float64 { return d.d.Grid(xs) }

// Bandwidth returns the estimate's bandwidth.
func (d *Density) Bandwidth() float64 { return d.d.Bandwidth }

// DensitySelection reports a KDE bandwidth choice.
type DensitySelection struct {
	Bandwidth float64
	Score     float64 // LSCV criterion value (rule-of-thumb selections report NaN-free 0)
	Rule      string  // "lscv", "silverman", or "scott"
}

// SelectDensityBandwidth chooses a KDE bandwidth for the sample x by
// least-squares cross-validation over a k-point grid, using the paper's
// sorted incremental technique applied to the KDE problem (its stated
// extension). k defaults to 50 when non-positive.
func SelectDensityBandwidth(x []float64, k int) (DensitySelection, error) {
	if k <= 0 {
		k = 50
	}
	r, err := kde.SelectLSCV(x, k)
	if err != nil {
		return DensitySelection{}, err
	}
	return DensitySelection{Bandwidth: r.H, Score: r.Score, Rule: "lscv"}, nil
}

// RuleOfThumbBandwidth returns the named rule-of-thumb KDE bandwidth
// ("silverman" or "scott") for kernel kernelName — the computationally
// cheap alternatives the paper says practitioners typically use instead
// of cross-validation.
func RuleOfThumbBandwidth(x []float64, rule, kernelName string) (DensitySelection, error) {
	k, err := kernel.Parse(kernelName)
	if err != nil {
		return DensitySelection{}, err
	}
	if len(x) < 2 {
		return DensitySelection{}, kde.ErrSample
	}
	switch rule {
	case "silverman":
		return DensitySelection{Bandwidth: kde.Silverman(x, k), Rule: rule}, nil
	case "scott":
		return DensitySelection{Bandwidth: kde.Scott(x, k), Rule: rule}, nil
	default:
		return DensitySelection{}, fmt.Errorf("kernreg: unknown rule of thumb %q", rule)
	}
}
