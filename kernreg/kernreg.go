// Package kernreg is the public API of this library: optimal bandwidth
// selection for Nadaraya–Watson kernel regression by leave-one-out
// cross-validation over a bandwidth grid, following Rohlfs & Zahran,
// "Optimal Bandwidth Selection for Kernel Regression Using a Fast Grid
// Search and a GPU" (IPPS 2017).
//
// The default selector is the paper's sorted incremental grid search:
// exact over the grid (no numerical-optimisation local minima) at
// O(n² log n) for the whole grid rather than the naive O(k·n²). Method
// options expose the naive search, the numerical optimiser the paper
// criticises, a goroutine-parallel search, and the paper's CUDA program
// executed on a simulated GPU.
//
//	sel, err := kernreg.SelectBandwidth(x, y, kernreg.GridSize(50))
//	reg, err := kernreg.Fit(x, y, sel.Bandwidth)
//	yhat, ok := reg.Predict(0.3)
package kernreg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/bandwidth"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/regression"
)

// Method selects the bandwidth-search algorithm.
type Method int

const (
	// MethodSorted is the paper's sorted incremental grid search
	// (double precision). The default.
	MethodSorted Method = iota
	// MethodSortedParallel fans the sorted search across goroutines.
	MethodSortedParallel
	// MethodSortedF32 is the single-precision variant, bit-faithful to
	// the paper's sequential C program.
	MethodSortedF32
	// MethodNaive evaluates the CV objective independently per grid
	// point (O(k·n²)); works with every kernel.
	MethodNaive
	// MethodNumerical uses derivative-free numerical optimisation (the
	// approach of the R np package). Subject to local minima.
	MethodNumerical
	// MethodGPU runs the paper's CUDA pipeline on a simulated GPU
	// (functional mode), including its memory-capacity limits.
	MethodGPU
	// MethodGPUTiled runs the future-work tiled pipeline (no n×n
	// matrices) on the simulated GPU: identical results, O(C·n) device
	// memory.
	MethodGPUTiled
	// MethodTwoPointer replaces the per-observation sorts of
	// MethodSorted with one global sort plus a two-pointer neighbour
	// merge per observation: O(n log n + n·(n+k)) total instead of
	// O(n² log n), same objective, same grid.
	MethodTwoPointer
	// MethodTwoPointerParallel shards the two-pointer sweep across
	// goroutines over the single shared sorted sample.
	MethodTwoPointerParallel
	// MethodTwoPointerF32 is the single-precision two-pointer variant:
	// Program 3's arithmetic with the global-sort enumeration.
	MethodTwoPointerF32
	// MethodBagged bags the two-pointer search over r subsamples of
	// size m (Barreiro-Ures, Cao & Francisco-Fernández,
	// arXiv:2105.04134): each bag runs an exact Θ(m²) sweep, the mean
	// winner is rescaled by (m/n)^(1/5), and the whole selection costs
	// Θ(r·m²) — reaching million-point samples the exact selectors
	// cannot. Configure with Bags, BagSize and Seed; with BagSize(n)
	// (or n ≤ 512 under the defaults) it degenerates to MethodTwoPointer
	// bit-identically.
	MethodBagged
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MethodSorted:
		return "sorted"
	case MethodSortedParallel:
		return "sorted-parallel"
	case MethodSortedF32:
		return "sorted-f32"
	case MethodNaive:
		return "naive"
	case MethodNumerical:
		return "numerical"
	case MethodGPU:
		return "gpu"
	case MethodGPUTiled:
		return "gpu-tiled"
	case MethodTwoPointer:
		return "twopointer"
	case MethodTwoPointerParallel:
		return "twopointer-parallel"
	case MethodTwoPointerF32:
		return "twopointer-f32"
	case MethodBagged:
		return "bagged"
	default:
		return fmt.Sprintf("kernreg.Method(%d)", int(m))
	}
}

// ParseMethod returns the Method named by s.
func ParseMethod(s string) (Method, error) {
	for _, m := range []Method{MethodSorted, MethodSortedParallel, MethodSortedF32, MethodNaive, MethodNumerical, MethodGPU, MethodGPUTiled, MethodTwoPointer, MethodTwoPointerParallel, MethodTwoPointerF32, MethodBagged} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("kernreg: unknown method %q", s)
}

// configPool recycles the options struct: passing &config to the Option
// closures makes it escape, which would be the one heap allocation left
// on the Pooled fast path.
var configPool = sync.Pool{New: func() any { return new(config) }}

// config collects the selection options.
type config struct {
	method     Method
	kern       kernel.Kind
	estimator  Estimator
	criterion  Criterion
	gridSize   int
	gridMin    float64
	gridMax    float64
	workers    int
	starts     int
	bags       int
	bagSize    int
	seed       int64
	seedSet    bool
	agg        bandwidth.Aggregation
	aggSet     bool
	keepScores bool
	stable     bool
	pooled     bool
}

// bagOptsSet reports whether any bagging option was supplied, for
// rejecting them on non-bagged methods.
func (c config) bagOptsSet() bool {
	return c.bags != 0 || c.bagSize != 0 || c.seedSet || c.aggSet
}

// stability maps the stable flag to the host sweeps' summation mode.
func (c config) stability() bandwidth.Stability {
	if c.stable {
		return bandwidth.Compensated
	}
	return bandwidth.Uncompensated
}

// Option configures SelectBandwidth.
type Option func(*config) error

// WithMethod selects the search algorithm.
func WithMethod(m Method) Option {
	return func(c *config) error { c.method = m; return nil }
}

// WithKernel selects the kernel weighting function by name
// ("epanechnikov", "uniform", "triangular", "gaussian", "biweight",
// "triweight", "cosine"). The sorted methods require a compact
// prefix-decomposable kernel; the naive and numerical methods accept any.
func WithKernel(name string) Option {
	return func(c *config) error {
		k, err := kernel.Parse(name)
		if err != nil {
			return err
		}
		c.kern = k
		return nil
	}
}

// GridSize sets the number of candidate bandwidths (paper default: 50).
func GridSize(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return errors.New("kernreg: grid size must be at least 1")
		}
		c.gridSize = k
		return nil
	}
}

// GridRange overrides the paper's default grid range (domain/k … domain
// of X) with explicit bounds.
func GridRange(min, max float64) Option {
	return func(c *config) error {
		if !(min > 0) || !(max > min) {
			return fmt.Errorf("kernreg: invalid grid range [%g, %g]", min, max)
		}
		c.gridMin, c.gridMax = min, max
		return nil
	}
}

// Workers sets the goroutine count for the parallel methods, including
// MethodBagged's concurrent bag sweeps (0 = GOMAXPROCS). Negative
// counts are rejected.
func Workers(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("kernreg: workers must be non-negative, got %d", n)
		}
		c.workers = n
		return nil
	}
}

// Restarts sets the number of multi-start restarts for MethodNumerical.
func Restarts(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return errors.New("kernreg: restarts must be at least 1")
		}
		c.starts = n
		return nil
	}
}

// Bags sets the subsample count r for MethodBagged (default 20).
func Bags(r int) Option {
	return func(c *config) error {
		if r < 1 {
			return fmt.Errorf("kernreg: bags must be at least 1, got %d", r)
		}
		c.bags = r
		return nil
	}
}

// BagSize sets the subsample size m for MethodBagged. m must be at
// least 2 and at most the sample size; the default grows like n^0.7,
// clamped to [512, 4096] (and to n itself, so small samples select
// exactly).
func BagSize(m int) Option {
	return func(c *config) error {
		if m < 2 {
			return fmt.Errorf("kernreg: bag size must be at least 2, got %d", m)
		}
		c.bagSize = m
		return nil
	}
}

// Seed fixes MethodBagged's subsampling streams: equal seeds reproduce
// the selection bit-for-bit across runs and worker counts. Negative
// seeds are rejected. The default seed is 0.
func Seed(s int64) Option {
	return func(c *config) error {
		if s < 0 {
			return fmt.Errorf("kernreg: seed must be non-negative, got %d", s)
		}
		c.seed = s
		c.seedSet = true
		return nil
	}
}

// Aggregation selects how MethodBagged combines the per-bag winning
// bandwidths: "mean" (the default, the estimator of Barreiro-Ures et
// al.) or "median" (robust to bags that subsample onto a degenerate
// configuration and select an outlier bandwidth). On the degenerate
// m == n path the two coincide — one exact sweep stands for every bag.
func Aggregation(name string) Option {
	return func(c *config) error {
		a, err := bandwidth.ParseAggregation(name)
		if err != nil {
			return fmt.Errorf("kernreg: unknown aggregation %q (want \"mean\" or \"median\")", name)
		}
		c.agg = a
		c.aggSet = true
		return nil
	}
}

// KeepScores retains the full CV score vector in the Selection.
func KeepScores() Option {
	return func(c *config) error { c.keepScores = true; return nil }
}

// Stable toggles compensated (Neumaier) summation in the grid-search hot
// loops. It defaults to on: the sorted methods' running prefix sums and
// the device pipelines' score reductions are exactly the "fast sum
// updating" arithmetic whose cancellation error grows with n, and
// compensation bounds it for a few percent of extra flops. Stable(false)
// restores the paper's plain accumulation, bit-faithful to the original
// C/CUDA programs — useful for ablation and agreement studies.
// MethodNaive and MethodNumerical re-evaluate the objective from scratch
// at every bandwidth (no running sums), so the flag is a no-op there.
func Stable(on bool) Option {
	return func(c *config) error { c.stable = on; return nil }
}

// Pooled enables the zero-allocation fast path for MethodTwoPointer:
// every scratch slice — the sorted copies, the neighbour buffers, the
// score accumulator, and the candidate grid itself — comes from a
// capacity-keyed sync.Pool, so steady-state selections allocate nothing
// after warm-up. The trade-off is a leaner Selection: Grid and Scores
// are left nil (their backing memory returns to the pool before
// SelectBandwidth returns). Pooled is rejected together with KeepScores
// or with any method other than MethodTwoPointer.
func Pooled() Option {
	return func(c *config) error { c.pooled = true; return nil }
}

// Selection is the outcome of a bandwidth search.
type Selection struct {
	// Bandwidth is the selected smoothing parameter.
	Bandwidth float64
	// CV is the leave-one-out cross-validation score at Bandwidth.
	CV float64
	// Index is the position in the grid (-1 for MethodNumerical, which
	// searches a continuum, and for non-degenerate MethodBagged, whose
	// rescaled aggregate falls between grid points).
	Index int
	// Grid is the candidate grid used (nil for MethodNumerical).
	Grid []float64
	// Scores holds CV(h) for every grid point when KeepScores was set.
	Scores []float64
	// Method records which algorithm produced the selection.
	Method Method
	// BagCVVariance is the unbiased sample variance of the per-bag CV
	// minima for MethodBagged — the spread behind CV's mean, for
	// confidence reporting. Zero for every other method and on the
	// degenerate m == n path.
	BagCVVariance float64
}

// SelectBandwidth chooses the CV-optimal bandwidth for a Nadaraya–Watson
// regression of y on x. Defaults: Epanechnikov kernel, 50-point grid over
// the paper's default range, sorted grid search.
func SelectBandwidth(x, y []float64, opts ...Option) (Selection, error) {
	return SelectBandwidthContext(context.Background(), x, y, opts...)
}

// SelectBandwidthContext is SelectBandwidth with cooperative
// cancellation: ctx's cancellation or deadline is propagated into every
// search method's hot loop (observation granularity for the host
// searches, tile/launch granularity for the device pipelines), so an
// abandoned request stops computing instead of running to completion.
// On cancellation the zero Selection and ctx.Err() are returned; a
// completed search is bit-identical to SelectBandwidth. A nil ctx is
// treated as context.Background().
func SelectBandwidthContext(ctx context.Context, x, y []float64, opts ...Option) (Selection, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cp := configPool.Get().(*config)
	defer configPool.Put(cp)
	*cp = config{method: MethodSorted, kern: kernel.Epanechnikov, gridSize: 50, stable: true}
	for _, opt := range opts {
		if err := opt(cp); err != nil {
			return Selection{}, err
		}
	}
	c := *cp
	if err := validateSample(x, y); err != nil {
		return Selection{}, err
	}
	if err := ctx.Err(); err != nil {
		return Selection{}, err
	}
	if c.method != MethodBagged && c.bagOptsSet() {
		return Selection{}, fmt.Errorf("kernreg: Bags, BagSize and Seed apply to MethodBagged only, not %v", c.method)
	}
	if c.estimator == LocalLinear {
		if c.criterion != CriterionCV {
			return Selection{}, errors.New("kernreg: the AICc criterion currently supports the local-constant estimator only")
		}
		return selectLocalLinear(ctx, x, y, c)
	}
	if c.criterion == CriterionAICc {
		return selectAICc(ctx, x, y, c)
	}
	if c.method == MethodNumerical {
		return selectNumerical(ctx, x, y, c)
	}
	if c.pooled {
		if c.method != MethodTwoPointer {
			return Selection{}, fmt.Errorf("kernreg: Pooled supports MethodTwoPointer only, not %v", c.method)
		}
		if c.keepScores {
			return Selection{}, errors.New("kernreg: Pooled and KeepScores are mutually exclusive (scores live in pooled memory)")
		}
		return selectTwoPointerPooled(ctx, x, y, c)
	}
	g, err := buildGrid(x, c)
	if err != nil {
		return Selection{}, err
	}
	var r bandwidth.Result
	var bagCVVar float64
	switch c.method {
	case MethodSorted:
		r, err = bandwidth.SortedGridSearchKernelStabilityContext(ctx, x, y, g, c.kern, c.stability())
	case MethodSortedParallel:
		if c.kern != kernel.Epanechnikov {
			return Selection{}, errors.New("kernreg: sorted-parallel currently supports the epanechnikov kernel only")
		}
		r, err = bandwidth.SortedGridSearchParallelStabilityContext(ctx, x, y, g, c.workers, c.stability())
	case MethodSortedF32:
		if c.kern != kernel.Epanechnikov {
			return Selection{}, errors.New("kernreg: sorted-f32 supports the epanechnikov kernel only")
		}
		if c.stable {
			r, err = core.SortedSequentialContext(ctx, x, y, g)
		} else {
			r, err = core.SortedSequentialUncompensatedContext(ctx, x, y, g)
		}
	case MethodNaive:
		r, err = bandwidth.NaiveGridSearchContext(ctx, x, y, g, c.kern)
	case MethodGPU:
		if c.kern != kernel.Epanechnikov && c.kern != kernel.Uniform && c.kern != kernel.Triangular {
			return Selection{}, errors.New("kernreg: gpu method supports the epanechnikov, uniform and triangular kernels")
		}
		r, _, err = core.SelectGPUContext(ctx, x, y, g, core.GPUOptions{KeepScores: c.keepScores, Kernel: c.kern, Uncompensated: !c.stable})
	case MethodGPUTiled:
		if c.kern != kernel.Epanechnikov {
			return Selection{}, errors.New("kernreg: gpu-tiled supports the epanechnikov kernel only")
		}
		r, _, _, err = core.SelectGPUTiledContext(ctx, x, y, g, core.TiledOptions{KeepScores: c.keepScores, Uncompensated: !c.stable})
	case MethodTwoPointer:
		r, err = bandwidth.TwoPointerGridSearchKernelStabilityContext(ctx, x, y, g, c.kern, c.stability())
	case MethodTwoPointerParallel:
		if c.kern != kernel.Epanechnikov {
			return Selection{}, errors.New("kernreg: twopointer-parallel currently supports the epanechnikov kernel only")
		}
		r, err = bandwidth.TwoPointerGridSearchParallelStabilityContext(ctx, x, y, g, c.workers, c.stability())
	case MethodTwoPointerF32:
		if c.kern != kernel.Epanechnikov {
			return Selection{}, errors.New("kernreg: twopointer-f32 supports the epanechnikov kernel only")
		}
		if c.stable {
			r, err = core.TwoPointerSequentialContext(ctx, x, y, g)
		} else {
			r, err = core.TwoPointerSequentialUncompensatedContext(ctx, x, y, g)
		}
	case MethodBagged:
		var br bandwidth.BaggedResult
		br, err = bandwidth.BaggedGridSearchContext(ctx, x, y, g, c.kern, bandwidth.BaggedOptions{
			Bags:        c.bags,
			BagSize:     c.bagSize,
			Seed:        uint64(c.seed),
			Workers:     c.workers,
			Stability:   c.stability(),
			Aggregation: c.agg,
		})
		// Non-degenerate bags report Index -1: the rescaled aggregate is
		// a continuum value, not a grid point. The degenerate m == n path
		// carries the exact sweep's index and scores through unchanged.
		r = br.Result
		bagCVVar = br.CVVar
	default:
		return Selection{}, fmt.Errorf("kernreg: unsupported method %v", c.method)
	}
	if err != nil {
		return Selection{}, err
	}
	sel := Selection{
		Bandwidth:     r.H,
		CV:            r.CV,
		Index:         r.Index,
		Grid:          append([]float64(nil), g.H...),
		Method:        c.method,
		BagCVVariance: bagCVVar,
	}
	if c.keepScores {
		sel.Scores = r.Scores
	}
	return sel, nil
}

// validateSample rejects structurally invalid input at the public API
// boundary — mismatched lengths, fewer than two observations, NaN or
// ±Inf values — with a descriptive error instead of letting a non-finite
// value poison every CV score and surface as an arbitrary selection.
func validateSample(x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("kernreg: X has %d observations, Y has %d", len(x), len(y))
	}
	if len(x) < 2 {
		return fmt.Errorf("kernreg: need at least 2 observations, have %d", len(x))
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("kernreg: X[%d] = %g is not finite", i, v)
		}
		if w := y[i]; math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("kernreg: Y[%d] = %g is not finite", i, w)
		}
	}
	return nil
}

func buildGrid(x []float64, c config) (bandwidth.Grid, error) {
	if c.gridMin > 0 {
		return bandwidth.NewGrid(c.gridMin, c.gridMax, c.gridSize)
	}
	return bandwidth.DefaultGrid(x, c.gridSize)
}

// selectTwoPointerPooled is the Pooled() fast path: the grid, the sorted
// copies, the neighbour buffers, and the score accumulator all live in a
// pooled workspace, so a warm call performs zero heap allocations. The
// Selection carries no Grid/Scores — their backing memory returns to the
// pool here.
func selectTwoPointerPooled(ctx context.Context, x, y []float64, c config) (Selection, error) {
	ws := bandwidth.AcquireWorkspace(len(x), c.gridSize)
	defer ws.Release()
	var g bandwidth.Grid
	var err error
	if c.gridMin > 0 {
		g, err = bandwidth.NewGridInto(c.gridMin, c.gridMax, c.gridSize, ws.GridBuf(c.gridSize))
	} else {
		g, err = bandwidth.DefaultGridInto(x, c.gridSize, ws.GridBuf(c.gridSize))
	}
	if err != nil {
		return Selection{}, err
	}
	r, err := bandwidth.TwoPointerGridSearchInto(ctx, x, y, g, c.kern, c.stability(), ws)
	if err != nil {
		return Selection{}, err
	}
	return Selection{Bandwidth: r.H, CV: r.CV, Index: r.Index, Method: c.method}, nil
}

func selectNumerical(ctx context.Context, x, y []float64, c config) (Selection, error) {
	opt := baselines.Options{Kernel: c.kern, Starts: c.starts, Workers: c.workers}
	if c.gridMin > 0 {
		opt.Lo, opt.Hi = c.gridMin, c.gridMax
	}
	var r baselines.Result
	var err error
	if c.workers > 1 {
		r, err = baselines.SelectNumericalParallelContext(ctx, x, y, opt)
	} else {
		r, err = baselines.SelectNumericalContext(ctx, x, y, opt)
	}
	if err != nil {
		return Selection{}, err
	}
	return Selection{Bandwidth: r.H, CV: r.CV, Index: -1, Method: MethodNumerical}, nil
}

// Regression is a fitted Nadaraya–Watson kernel regression.
type Regression struct {
	m *regression.Model
}

// Fit constructs a kernel regression of y on x with bandwidth h and the
// Epanechnikov kernel. Use FitKernel to choose another kernel.
func Fit(x, y []float64, h float64) (*Regression, error) {
	return FitKernel(x, y, h, "epanechnikov")
}

// FitKernel is Fit with an explicit kernel name.
func FitKernel(x, y []float64, h float64, kernelName string) (*Regression, error) {
	k, err := kernel.Parse(kernelName)
	if err != nil {
		return nil, err
	}
	m, err := regression.New(x, y, h, k)
	if err != nil {
		return nil, err
	}
	return &Regression{m: m}, nil
}

// Bandwidth returns the model's bandwidth.
func (r *Regression) Bandwidth() float64 { return r.m.Bandwidth }

// Predict returns the estimated conditional mean at x0; ok is false when
// no observation falls within the bandwidth (the estimate is then NaN).
func (r *Regression) Predict(x0 float64) (value float64, ok bool) {
	return r.m.Predict(x0)
}

// PredictGrid evaluates the regression at each point of xs.
func (r *Regression) PredictGrid(xs []float64) []float64 {
	return r.m.PredictGrid(xs)
}

// PredictLocalLinear returns the local-linear estimate at x0, which
// removes the local-constant estimator's boundary bias.
func (r *Regression) PredictLocalLinear(x0 float64) (value float64, ok bool) {
	return r.m.PredictLocalLinear(x0)
}

// PredictLocalPoly returns the degree-p local polynomial estimate at x0
// (degree 0 = Nadaraya–Watson, 1 = local linear, up to 5). Singular local
// designs degrade gracefully to the highest solvable degree.
func (r *Regression) PredictLocalPoly(x0 float64, degree int) (value float64, ok bool) {
	return r.m.PredictLocalPoly(x0, degree)
}

// Derivative returns the nonparametric marginal effect ∂E[Y|X=x]/∂x at
// x0 (the local-linear slope); ok is false where the slope is
// unidentified.
func (r *Regression) Derivative(x0 float64) (value float64, ok bool) {
	return r.m.Derivative(x0)
}

// CVScore returns the leave-one-out cross-validation score of the fitted
// bandwidth.
func (r *Regression) CVScore() float64 { return r.m.CVScore() }

// EffectiveN returns the kernel-weighted effective number of observations
// contributing to the estimate at x0.
func (r *Regression) EffectiveN(x0 float64) float64 { return r.m.EffectiveN(x0) }

// Band is a pointwise confidence band around the fitted curve.
type Band struct {
	X, Fit, Lower, Upper []float64
}

// ConfidenceBand returns pointwise confidence bands over xs at normal
// critical value z (e.g. 1.96 for 95%), using leave-one-out residuals for
// the local variance — the LOO-CV confidence intervals the paper lists as
// a direct extension of its machinery.
func (r *Regression) ConfidenceBand(xs []float64, z float64) (Band, error) {
	b, err := r.m.ConfidenceBand(xs, z)
	if err != nil {
		return Band{}, err
	}
	return Band{X: b.X, Fit: b.Fit, Lower: b.Lower, Upper: b.Upper}, nil
}
