package kernreg

import (
	"math"
	"testing"

	"repro/internal/data"
)

func paperData(n int, seed int64) ([]float64, []float64) {
	d := data.GeneratePaper(n, seed)
	return d.X, d.Y
}

func TestSelectBandwidthDefaults(t *testing.T) {
	x, y := paperData(200, 1)
	sel, err := SelectBandwidth(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Bandwidth <= 0 || sel.CV <= 0 {
		t.Errorf("selection = %+v", sel)
	}
	if len(sel.Grid) != 50 {
		t.Errorf("default grid size = %d, want 50", len(sel.Grid))
	}
	if sel.Method != MethodSorted {
		t.Error("default method should be sorted")
	}
	if sel.Grid[sel.Index] != sel.Bandwidth {
		t.Error("bandwidth misaligned with grid index")
	}
	if sel.Scores != nil {
		t.Error("scores should be omitted unless requested")
	}
}

func TestAllGridMethodsAgree(t *testing.T) {
	x, y := paperData(250, 7)
	base, err := SelectBandwidth(x, y, GridSize(25))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodSortedParallel, MethodSortedF32, MethodNaive, MethodGPU, MethodGPUTiled, MethodTwoPointer, MethodTwoPointerParallel, MethodTwoPointerF32} {
		sel, err := SelectBandwidth(x, y, GridSize(25), WithMethod(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if sel.Index != base.Index {
			t.Errorf("%v selected index %d, sorted selected %d", m, sel.Index, base.Index)
		}
	}
}

func TestNumericalMethod(t *testing.T) {
	x, y := paperData(200, 3)
	sel, err := SelectBandwidth(x, y, WithMethod(MethodNumerical), Restarts(4))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Index != -1 || sel.Grid != nil {
		t.Error("numerical method should not report a grid index")
	}
	grid, _ := SelectBandwidth(x, y, GridSize(200))
	if math.Abs(sel.Bandwidth-grid.Bandwidth) > 0.05 {
		t.Errorf("numerical h = %v, grid h = %v", sel.Bandwidth, grid.Bandwidth)
	}
	// Parallel numerical path.
	par, err := SelectBandwidth(x, y, WithMethod(MethodNumerical), Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(par.Bandwidth-sel.Bandwidth) > 0.05 {
		t.Errorf("parallel numerical diverged: %v vs %v", par.Bandwidth, sel.Bandwidth)
	}
}

func TestKeepScores(t *testing.T) {
	x, y := paperData(100, 5)
	sel, err := SelectBandwidth(x, y, GridSize(20), KeepScores())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Scores) != 20 {
		t.Fatalf("scores length %d", len(sel.Scores))
	}
	if sel.Scores[sel.Index] != sel.CV {
		t.Error("score misaligned")
	}
}

func TestGridRangeOption(t *testing.T) {
	x, y := paperData(100, 2)
	sel, err := SelectBandwidth(x, y, GridRange(0.05, 0.5), GridSize(10))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Grid[0] != 0.05 || sel.Grid[9] != 0.5 {
		t.Errorf("grid range not honoured: %v", sel.Grid)
	}
}

func TestKernelOption(t *testing.T) {
	x, y := paperData(150, 9)
	for _, name := range []string{"uniform", "triangular"} {
		if _, err := SelectBandwidth(x, y, WithKernel(name)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Gaussian works with the naive method but not the sorted one.
	if _, err := SelectBandwidth(x, y, WithKernel("gaussian")); err == nil {
		t.Error("gaussian + sorted should fail")
	}
	if _, err := SelectBandwidth(x, y, WithKernel("gaussian"), WithMethod(MethodNaive)); err != nil {
		t.Error("gaussian + naive should work")
	}
	if _, err := SelectBandwidth(x, y, WithKernel("nonesuch")); err == nil {
		t.Error("unknown kernel should fail")
	}
	// The single-precision and parallel paths are Epanechnikov-only; the
	// GPU path covers footnote 1's full compact set.
	for _, m := range []Method{MethodSortedF32, MethodSortedParallel} {
		if _, err := SelectBandwidth(x, y, WithKernel("uniform"), WithMethod(m)); err == nil {
			t.Errorf("%v with uniform kernel should be rejected", m)
		}
	}
	for _, kn := range []string{"uniform", "triangular"} {
		gpuSel, err := SelectBandwidth(x, y, WithKernel(kn), WithMethod(MethodGPU), GridSize(20))
		if err != nil {
			t.Fatalf("gpu + %s: %v", kn, err)
		}
		host, err := SelectBandwidth(x, y, WithKernel(kn), GridSize(20))
		if err != nil {
			t.Fatal(err)
		}
		if gpuSel.Index != host.Index {
			t.Errorf("gpu %s index %d vs host %d", kn, gpuSel.Index, host.Index)
		}
	}
	if _, err := SelectBandwidth(x, y, WithKernel("biweight"), WithMethod(MethodGPU)); err == nil {
		t.Error("gpu + biweight should be rejected")
	}
}

func TestOptionValidation(t *testing.T) {
	x, y := paperData(50, 1)
	if _, err := SelectBandwidth(x, y, GridSize(0)); err == nil {
		t.Error("grid size 0 should fail")
	}
	if _, err := SelectBandwidth(x, y, GridRange(0.5, 0.1)); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := SelectBandwidth(x, y, Restarts(0)); err == nil {
		t.Error("restarts 0 should fail")
	}
}

func TestParseMethod(t *testing.T) {
	for _, m := range []Method{MethodSorted, MethodSortedParallel, MethodSortedF32, MethodNaive, MethodNumerical, MethodGPU, MethodGPUTiled} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestFitPredict(t *testing.T) {
	x, y := paperData(400, 11)
	sel, err := SelectBandwidth(x, y)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Fit(x, y, sel.Bandwidth)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Bandwidth() != sel.Bandwidth {
		t.Error("bandwidth not stored")
	}
	got, ok := reg.Predict(0.5)
	want := data.Paper.TrueMean(0.5)
	if !ok || math.Abs(got-want) > 0.25 {
		t.Errorf("ĝ(0.5) = %v, want ≈ %v", got, want)
	}
	grid := reg.PredictGrid([]float64{0.2, 0.8})
	if len(grid) != 2 {
		t.Error("PredictGrid length wrong")
	}
	if reg.CVScore() <= 0 {
		t.Error("CV score should be positive")
	}
	if reg.EffectiveN(0.5) <= 1 {
		t.Error("effective n should exceed 1 at an interior point")
	}
	ll, ok := reg.PredictLocalLinear(0.5)
	if !ok || math.Abs(ll-want) > 0.25 {
		t.Errorf("local linear = %v", ll)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([]float64{1, 2}, []float64{1}, 0.5); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1, 2}, 0); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if _, err := FitKernel([]float64{1, 2}, []float64{1, 2}, 0.5, "bogus"); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestConfidenceBand(t *testing.T) {
	x, y := paperData(500, 13)
	reg, err := Fit(x, y, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	band, err := reg.ConfidenceBand([]float64{0.3, 0.7}, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	for i := range band.X {
		if !(band.Lower[i] < band.Fit[i] && band.Fit[i] < band.Upper[i]) {
			t.Errorf("band ordering broken at %v", band.X[i])
		}
	}
	if _, err := reg.ConfidenceBand([]float64{0.3}, -1); err == nil {
		t.Error("negative z should fail")
	}
}

func TestDensityAPI(t *testing.T) {
	x, _ := paperData(500, 17)
	sel, err := SelectDensityBandwidth(x, 0) // default k
	if err != nil {
		t.Fatal(err)
	}
	if sel.Bandwidth <= 0 || sel.Rule != "lscv" {
		t.Errorf("density selection = %+v", sel)
	}
	den, err := NewDensity(x, sel.Bandwidth, "epanechnikov")
	if err != nil {
		t.Fatal(err)
	}
	if den.Bandwidth() != sel.Bandwidth {
		t.Error("bandwidth not stored")
	}
	if den.At(0.5) <= 0 {
		t.Error("density should be positive in the support")
	}
	if len(den.Grid([]float64{0.1, 0.9})) != 2 {
		t.Error("Grid length wrong")
	}
	for _, rule := range []string{"silverman", "scott"} {
		r, err := RuleOfThumbBandwidth(x, rule, "epanechnikov")
		if err != nil || r.Bandwidth <= 0 {
			t.Errorf("%s: %+v, %v", rule, r, err)
		}
	}
	if _, err := RuleOfThumbBandwidth(x, "bogus", "epanechnikov"); err == nil {
		t.Error("unknown rule should fail")
	}
	if _, err := RuleOfThumbBandwidth(x, "scott", "bogus"); err == nil {
		t.Error("unknown kernel should fail")
	}
	if _, err := RuleOfThumbBandwidth([]float64{1}, "scott", "epanechnikov"); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := NewDensity(x, -1, "epanechnikov"); err == nil {
		t.Error("negative bandwidth should fail")
	}
	if _, err := NewDensity(x, 0.1, "bogus"); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestGPUMethodCapacityError(t *testing.T) {
	x, y := paperData(60, 19)
	_, err := SelectBandwidth(x, y, WithMethod(MethodGPU), GridSize(2049), GridRange(0.001, 1))
	if err == nil {
		t.Error("k=2049 on the GPU should hit the constant cache limit")
	}
}

func TestMethodString(t *testing.T) {
	if Method(42).String() == "" {
		t.Error("unknown method should stringify")
	}
}
