package kernreg

import (
	"repro/internal/knn"
)

// KNNSelection reports a cross-validated neighbour-count choice.
type KNNSelection struct {
	K      int
	CV     float64
	Scores []float64 // CV for every k = 1..len(Scores)
}

// SelectNeighbors cross-validates the neighbour count of a k-nearest-
// neighbour regression of y on x over k = 1..maxK (maxK ≤ 0 means n−1),
// using one sorted prefix-mean sweep per observation — the adaptive-
// bandwidth counterpart of SelectBandwidth, provided because the paper's
// related work (Creel & Zubair) uses the k-NN estimator.
func SelectNeighbors(x, y []float64, maxK int) (KNNSelection, error) {
	r, err := knn.SelectK(x, y, maxK)
	if err != nil {
		return KNNSelection{}, err
	}
	return KNNSelection{K: r.K, CV: r.CV, Scores: r.Scores}, nil
}

// KNNRegression is a fitted k-nearest-neighbour regression.
type KNNRegression struct {
	m *knn.Model
}

// FitKNN constructs a k-NN regression with k neighbours.
func FitKNN(x, y []float64, k int) (*KNNRegression, error) {
	m, err := knn.New(x, y, k)
	if err != nil {
		return nil, err
	}
	return &KNNRegression{m: m}, nil
}

// Predict returns the mean response of the k nearest neighbours of x0.
func (r *KNNRegression) Predict(x0 float64) float64 { return r.m.Predict(x0) }

// K returns the neighbour count.
func (r *KNNRegression) K() int { return r.m.K }

// EffectiveBandwidth returns the adaptive bandwidth the estimator implies
// at x0 — the distance to the k-th nearest neighbour.
func (r *KNNRegression) EffectiveBandwidth(x0 float64) float64 {
	return r.m.EffectiveBandwidthAt(x0)
}
