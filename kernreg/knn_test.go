package kernreg

import (
	"math"
	"testing"

	"repro/internal/data"
)

func TestKNNAPI(t *testing.T) {
	d := data.GeneratePaper(400, 13)
	sel, err := SelectNeighbors(d.X, d.Y, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sel.K < 1 || sel.K > 100 || len(sel.Scores) != 100 {
		t.Errorf("selection = %+v", sel)
	}
	reg, err := FitKNN(d.X, d.Y, sel.K)
	if err != nil {
		t.Fatal(err)
	}
	if reg.K() != sel.K {
		t.Error("K not stored")
	}
	got := reg.Predict(0.5)
	want := data.Paper.TrueMean(0.5)
	if math.Abs(got-want) > 0.2 {
		t.Errorf("k-NN fit = %v, want ≈ %v", got, want)
	}
	if reg.EffectiveBandwidth(0.5) <= 0 {
		t.Error("effective bandwidth should be positive")
	}
	if _, err := SelectNeighbors(d.X[:2], d.Y[:2], 0); err == nil {
		t.Error("n<3 should fail")
	}
	if _, err := FitKNN(d.X, d.Y, 0); err == nil {
		t.Error("k=0 should fail")
	}
}
