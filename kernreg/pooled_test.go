package kernreg

import (
	"testing"
)

func TestPooledMatchesUnpooled(t *testing.T) {
	x, y := paperData(300, 17)
	want, err := SelectBandwidth(x, y, WithMethod(MethodTwoPointer), GridSize(40))
	if err != nil {
		t.Fatal(err)
	}
	got, err := SelectBandwidth(x, y, WithMethod(MethodTwoPointer), GridSize(40), Pooled())
	if err != nil {
		t.Fatal(err)
	}
	if got.Bandwidth != want.Bandwidth || got.CV != want.CV || got.Index != want.Index {
		t.Errorf("pooled selection %+v differs from unpooled %+v", got, want)
	}
	if got.Grid != nil || got.Scores != nil {
		t.Errorf("pooled selection must not retain Grid/Scores: %+v", got)
	}
	if got.Method != MethodTwoPointer {
		t.Errorf("pooled selection method = %v", got.Method)
	}
	// Explicit grid range too.
	want, err = SelectBandwidth(x, y, WithMethod(MethodTwoPointer), GridSize(16), GridRange(0.1, 2))
	if err != nil {
		t.Fatal(err)
	}
	got, err = SelectBandwidth(x, y, WithMethod(MethodTwoPointer), GridSize(16), GridRange(0.1, 2), Pooled())
	if err != nil {
		t.Fatal(err)
	}
	if got.Bandwidth != want.Bandwidth || got.Index != want.Index {
		t.Errorf("pooled ranged selection %+v differs from unpooled %+v", got, want)
	}
}

func TestPooledOptionValidation(t *testing.T) {
	x, y := paperData(64, 2)
	if _, err := SelectBandwidth(x, y, Pooled()); err == nil {
		t.Error("Pooled with the default (sorted) method should be rejected")
	}
	if _, err := SelectBandwidth(x, y, WithMethod(MethodNaive), Pooled()); err == nil {
		t.Error("Pooled with MethodNaive should be rejected")
	}
	if _, err := SelectBandwidth(x, y, WithMethod(MethodTwoPointer), Pooled(), KeepScores()); err == nil {
		t.Error("Pooled with KeepScores should be rejected")
	}
}

// TestPooledSteadyStateZeroAlloc is the allocation contract of the
// Pooled fast path: after one warm-up call (which populates the
// workspace pool), a selection through the full public API performs
// zero heap allocations. The options slice is pre-built — the variadic
// call site itself would otherwise allocate it per run, which is the
// caller's choice, not the library's.
func TestPooledSteadyStateZeroAlloc(t *testing.T) {
	if testRaceEnabled {
		t.Skip("race runtime adds bookkeeping allocations")
	}
	x, y := paperData(512, 9)
	opts := []Option{WithMethod(MethodTwoPointer), GridSize(50), Pooled()}
	if _, err := SelectBandwidth(x, y, opts...); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := SelectBandwidth(x, y, opts...); err != nil {
			t.Fatal(err)
		}
	})
	// A GC during the measurement may empty the sync.Pool and force one
	// refill; amortised over 100 runs that is well under one object per
	// op, while a genuinely allocating path costs several per op.
	if avg >= 1 {
		t.Errorf("pooled SelectBandwidth allocates %.2f objects/op steady-state, want 0", avg)
	}
}
