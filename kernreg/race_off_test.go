//go:build !race

package kernreg

// testRaceEnabled mirrors internal/harness's race detection for the
// allocation assertions: the race runtime instruments sync.Pool and
// adds bookkeeping allocations that would fail a strict 0-alloc check.
const testRaceEnabled = false
