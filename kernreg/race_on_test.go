//go:build race

package kernreg

// testRaceEnabled reports that the race detector is compiled in; see
// race_off_test.go.
const testRaceEnabled = true
