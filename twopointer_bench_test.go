package repro

import (
	"fmt"
	"testing"

	"repro/internal/bandwidth"
	"repro/kernreg"
)

// BenchmarkTwoPointerVsSorted is the head-to-head the two-pointer sweep
// must win: the paper's sorted incremental search (per-observation
// QuickSort, O(n² log n)) against the global-sort two-pointer merge
// (O(n log n + n·(n + k))) on identical data and grids. ReportAllocs
// makes the allocation story part of the result — the sorted path
// allocates its argsort scratch per call, the two-pointer path runs out
// of pooled workspaces.
//
// cmd/bwbench -twopointer runs the same cells via testing.Benchmark and
// writes BENCH_4.json; EXPERIMENTS.md quotes those numbers.
func BenchmarkTwoPointerVsSorted(b *testing.B) {
	for _, n := range []int{500, 2000, 10000} {
		for _, k := range []int{50, 500} {
			d, g := setup(b, n, k)
			b.Run(fmt.Sprintf("n=%d/k=%d/sorted", n, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := bandwidth.SortedGridSearch(d.X, d.Y, g); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("n=%d/k=%d/twopointer", n, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := bandwidth.TwoPointerGridSearch(d.X, d.Y, g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTwoPointerPooledSelect is the zero-allocation claim for the
// public API: steady-state kernreg.SelectBandwidth with Pooled() must
// report 0 allocs/op (the first iteration warms the workspace pool; b.N
// amortises it away).
func BenchmarkTwoPointerPooledSelect(b *testing.B) {
	d, _ := setup(b, 2000, 50)
	opts := []kernreg.Option{kernreg.WithMethod(kernreg.MethodTwoPointer), kernreg.GridSize(50), kernreg.Pooled()}
	if _, err := kernreg.SelectBandwidth(d.X, d.Y, opts...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernreg.SelectBandwidth(d.X, d.Y, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoPointerParallel pins the parallel family's scaling point
// used in EXPERIMENTS.md.
func BenchmarkTwoPointerParallel(b *testing.B) {
	for _, n := range []int{2000, 10000} {
		d, g := setup(b, n, 50)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bandwidth.TwoPointerGridSearchParallel(d.X, d.Y, g, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
